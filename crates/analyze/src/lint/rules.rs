//! Built-in lint rules.
//!
//! Every rule implements [`Rule`] and works on the preprocessed
//! [`SourceFile`] views, so none of them can fire inside comments, string
//! literals or `#[cfg(test)]` blocks (unless a rule opts in). A finding
//! can be suppressed inline with a comment containing
//! `analyze::allow(<rule-id>)` on the same line or the line above, or via
//! the checked-in allowlist (`crates/analyze/allow.toml`).

use super::source::SourceFile;

/// One reported defect.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Rule identifier (e.g. `no-unwrap-in-lib`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// Cargo package the file belongs to.
    pub crate_name: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// The offending raw source line, trimmed.
    pub excerpt: String,
}

/// A pluggable lint rule.
pub trait Rule {
    /// Stable identifier used in reports, allowlists and inline
    /// suppressions.
    fn id(&self) -> &'static str;

    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;

    /// Whether the rule runs on this file at all (path-based scoping).
    fn applies_to(&self, file: &SourceFile) -> bool {
        let _ = file;
        true
    }

    /// Scan one file and report findings.
    fn check(&self, file: &SourceFile) -> Vec<Finding>;
}

/// The built-in rule set, in reporting order.
pub fn builtin_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnwrapInLib),
        Box::new(NoExpectInLib),
        Box::new(PanicAudit),
        Box::new(PubItemNeedsDoc),
        Box::new(NoSleepInHotPath),
        Box::new(FloatCastTruncation),
        Box::new(NoUnboundedRetry),
    ]
}

fn finding(rule: &'static str, file: &SourceFile, line: usize, message: String) -> Finding {
    Finding {
        rule,
        path: file.rel_path.clone(),
        crate_name: file.crate_name.clone(),
        line: line + 1,
        message,
        excerpt: file
            .lines
            .get(line)
            .map(|l| l.trim().to_string())
            .unwrap_or_default(),
    }
}

/// Scan non-test code lines for a needle, with a per-line veto.
fn scan_code<F>(
    rule: &'static str,
    file: &SourceFile,
    needles: &[&str],
    message: F,
) -> Vec<Finding>
where
    F: Fn(&str) -> String,
{
    let mut out = Vec::new();
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for needle in needles {
            if code.contains(needle) {
                out.push(finding(rule, file, i, message(needle)));
                break;
            }
        }
    }
    out
}

/// `Result::unwrap()` / `Option::unwrap()` in library code turns a
/// recoverable condition into a process abort on the car.
pub struct NoUnwrapInLib;

impl Rule for NoUnwrapInLib {
    fn id(&self) -> &'static str {
        "no-unwrap-in-lib"
    }

    fn description(&self) -> &'static str {
        "library code must not call .unwrap(); propagate errors or document the invariant"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        !file.is_bin
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        scan_code(self.id(), file, &[".unwrap()"], |_| {
            "`.unwrap()` in library code; return a Result or use unwrap_or_else with a \
             documented invariant"
                .to_string()
        })
    }
}

/// Like unwrap, but `.expect(...)`: still an abort, just with a message.
pub struct NoExpectInLib;

impl Rule for NoExpectInLib {
    fn id(&self) -> &'static str {
        "no-expect-in-lib"
    }

    fn description(&self) -> &'static str {
        "library code must not call .expect(); propagate errors instead of aborting"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        !file.is_bin
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            // `.expect(` but not `.expect_err(` and not our own lint-name
            // strings (those live in string literals and are blanked).
            let mut search = code.as_str();
            while let Some(pos) = search.find(".expect") {
                let after = &search[pos + ".expect".len()..];
                if after.starts_with('(') {
                    out.push(finding(
                        self.id(),
                        file,
                        i,
                        "`.expect()` in library code; return a Result instead of aborting"
                            .to_string(),
                    ));
                    break;
                }
                search = after;
            }
        }
        out
    }
}

/// `panic!` / `todo!` / `unimplemented!` must carry an
/// `INVARIANT:` comment explaining why the condition is impossible or the
/// stub acceptable.
pub struct PanicAudit;

impl Rule for PanicAudit {
    fn id(&self) -> &'static str {
        "panic-audit"
    }

    fn description(&self) -> &'static str {
        "panic!/todo!/unimplemented! need an adjacent `INVARIANT:` comment"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            for mac in ["panic!(", "todo!(", "unimplemented!("] {
                if code.contains(mac) && !file.comment_near(i, 2).contains("INVARIANT:") {
                    out.push(finding(
                        self.id(),
                        file,
                        i,
                        format!(
                            "`{}...)` without an `INVARIANT:` comment within 2 lines",
                            mac.trim_end_matches('(')
                        ),
                    ));
                    break;
                }
            }
        }
        out
    }
}

/// Every `pub` item that is part of a crate's API surface needs a doc
/// comment. `pub(crate)` / `pub(super)` items and re-exports are exempt.
pub struct PubItemNeedsDoc;

const PUB_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "unsafe",
];

impl Rule for PubItemNeedsDoc {
    fn id(&self) -> &'static str {
        "pub-item-needs-doc"
    }

    fn description(&self) -> &'static str {
        "public items (pub fn/struct/enum/trait/type/const/static/mod) need /// docs"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            let trimmed = code.trim_start();
            let Some(rest) = trimmed.strip_prefix("pub ") else {
                continue;
            };
            let keyword = rest.split_whitespace().next().unwrap_or("");
            if !PUB_ITEM_KEYWORDS.contains(&keyword) {
                continue;
            }
            if is_documented(file, i) {
                continue;
            }
            out.push(finding(
                self.id(),
                file,
                i,
                format!("undocumented public item `pub {keyword} ...`"),
            ));
        }
        out
    }
}

/// Walk upward over attribute lines; the item is documented if the first
/// non-attribute line above carries a `///` or `//!` comment.
fn is_documented(file: &SourceFile, item_line: usize) -> bool {
    let mut i = item_line;
    while i > 0 {
        i -= 1;
        let code = file.code[i].trim();
        let comment = file.comments[i].trim();
        if code.starts_with("#[") || code.ends_with(']') && code.starts_with('#') {
            continue; // attribute
        }
        if code.is_empty() && comment.is_empty() {
            return false; // blank line: doc block (if any) is detached
        }
        if code.is_empty() {
            return comment.starts_with("///") || comment.starts_with("//!");
        }
        return false; // previous line is other code
    }
    false
}

/// `thread::sleep` inside the kernels that run per-frame on the car
/// (nn / sim / tub) stalls the control loop.
pub struct NoSleepInHotPath;

impl Rule for NoSleepInHotPath {
    fn id(&self) -> &'static str {
        "no-sleep-in-hot-path"
    }

    fn description(&self) -> &'static str {
        "no thread::sleep in nn/sim/tub kernels (per-frame control path)"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        ["crates/nn/src/", "crates/sim/src/", "crates/tub/src/"]
            .iter()
            .any(|p| file.rel_path.starts_with(p))
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        scan_code(self.id(), file, &["thread::sleep"], |_| {
            "thread::sleep in a hot-path crate; drive timing from the simulation clock"
                .to_string()
        })
    }
}

/// Narrowing `as` casts in the nn kernels silently truncate; each one
/// must carry a `cast:` comment stating why the value fits.
pub struct FloatCastTruncation;

impl Rule for FloatCastTruncation {
    fn id(&self) -> &'static str {
        "float-cast-truncation"
    }

    fn description(&self) -> &'static str {
        "`as usize` / `as f32` in crates/nn kernels need a `cast:` comment"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        file.rel_path.starts_with("crates/nn/src/")
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            let has_cast = [" as usize", " as f32"]
                .iter()
                .any(|n| contains_token_cast(code, n));
            if has_cast && !file.comment_near(i, 1).contains("cast:") {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    "narrowing `as` cast without a `cast:` comment on this or the previous line"
                        .to_string(),
                ));
            }
        }
        out
    }
}

/// A bare `loop` that drives retries or backoff must be bounded: its body
/// has to consult an attempt cap or a deadline, or the retry storm never
/// ends when the fault never clears.
pub struct NoUnboundedRetry;

const RETRY_TOKENS: &[&str] = &["retry", "backoff"];
const CAP_TOKENS: &[&str] = &["max_attempts", "deadline", ".allows("];

impl Rule for NoUnboundedRetry {
    fn id(&self) -> &'static str {
        "no-unbounded-retry"
    }

    fn description(&self) -> &'static str {
        "`loop` bodies doing retry/backoff must check an attempt cap or deadline"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        !file.is_bin
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] || !contains_keyword(code, "loop") {
                continue;
            }
            let Some(end) = block_end(file, i) else {
                continue;
            };
            let body = file.code[i..=end].join("\n").to_lowercase();
            let retries = RETRY_TOKENS.iter().any(|t| body.contains(t));
            let bounded = CAP_TOKENS.iter().any(|t| body.contains(t));
            if retries && !bounded {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    "retry/backoff inside a `loop` with no attempt cap or deadline check"
                        .to_string(),
                ));
            }
        }
        out
    }
}

/// Whether `code` contains `keyword` as a standalone word (not part of an
/// identifier like `driveloop` or `loop_count`).
fn contains_keyword(code: &str, keyword: &str) -> bool {
    let mut search = code;
    let mut consumed = 0usize;
    while let Some(pos) = search.find(keyword) {
        let before_ok = code[..consumed + pos]
            .chars()
            .next_back()
            .map(|c| !c.is_alphanumeric() && c != '_')
            .unwrap_or(true);
        let after = &search[pos + keyword.len()..];
        let after_ok = after
            .chars()
            .next()
            .map(|c| !c.is_alphanumeric() && c != '_')
            .unwrap_or(true);
        if before_ok && after_ok {
            return true;
        }
        consumed += pos + keyword.len();
        search = after;
    }
    false
}

/// Line index where the brace block opened on `start` closes, by brace
/// counting over the comment-stripped code view. `None` for an unclosed
/// block (malformed source).
fn block_end(file: &SourceFile, start: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut opened = false;
    for (i, code) in file.code.iter().enumerate().skip(start) {
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return Some(i);
        }
    }
    None
}

/// Match ` as usize` / ` as f32` as a cast, not as part of an identifier
/// (the needle's leading space plus a following non-ident char).
fn contains_token_cast(code: &str, needle: &str) -> bool {
    let mut search = code;
    while let Some(pos) = search.find(needle) {
        let after = &search[pos + needle.len()..];
        let boundary = after
            .chars()
            .next()
            .map(|c| !c.is_alphanumeric() && c != '_')
            .unwrap_or(true);
        if boundary {
            return true;
        }
        search = after;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, "test-crate", src)
    }

    #[test]
    fn unwrap_fires_in_lib_not_in_tests_or_bins() {
        let src = "pub fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let lib = file("crates/x/src/lib.rs", src);
        let found = NoUnwrapInLib.check(&lib);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
        let bin = file("crates/x/src/bin/tool.rs", src);
        assert!(!NoUnwrapInLib.applies_to(&bin));
    }

    #[test]
    fn expect_fires_but_expect_err_does_not() {
        let src = "fn f() { a.expect(\"boom\"); b.expect_err(\"fine\"); }\n";
        let found = NoExpectInLib.check(&file("crates/x/src/lib.rs", src));
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn panic_audit_accepts_invariant_comment() {
        let bad = "fn f() { panic!(\"no\"); }\n";
        assert_eq!(PanicAudit.check(&file("crates/x/src/a.rs", bad)).len(), 1);
        let good = "// INVARIANT: checked by caller\nfn f() { panic!(\"no\"); }\n";
        assert!(PanicAudit.check(&file("crates/x/src/a.rs", good)).is_empty());
    }

    #[test]
    fn pub_doc_rule_sees_docs_through_attributes() {
        let good = "/// Documented.\n#[derive(Debug)]\npub struct A;\n";
        assert!(PubItemNeedsDoc.check(&file("crates/x/src/a.rs", good)).is_empty());
        let bad = "pub fn undocd() {}\n";
        assert_eq!(PubItemNeedsDoc.check(&file("crates/x/src/a.rs", bad)).len(), 1);
        let scoped = "pub(crate) fn internal() {}\n";
        assert!(PubItemNeedsDoc.check(&file("crates/x/src/a.rs", scoped)).is_empty());
    }

    #[test]
    fn sleep_rule_is_path_scoped() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        let hot = file("crates/nn/src/tensor.rs", src);
        assert!(NoSleepInHotPath.applies_to(&hot));
        assert_eq!(NoSleepInHotPath.check(&hot).len(), 1);
        let cold = file("crates/cloud/src/lib.rs", src);
        assert!(!NoSleepInHotPath.applies_to(&cold));
    }

    #[test]
    fn unbounded_retry_loop_fires() {
        let bad = "fn f() {\n    loop {\n        if try_once().is_ok() { break; }\n        charge(policy.backoff(n, seed));\n    }\n}\n";
        let found = NoUnboundedRetry.check(&file("crates/x/src/a.rs", bad));
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn capped_retry_loop_passes() {
        for cap in ["if !policy.allows(n, elapsed) { return Err(e); }",
                    "if n > max_attempts { break; }",
                    "if elapsed > deadline { break; }"] {
            let src = format!(
                "fn f() {{\n    loop {{\n        {cap}\n        charge(policy.backoff(n, seed));\n    }}\n}}\n"
            );
            let found = NoUnboundedRetry.check(&file("crates/x/src/a.rs", &src));
            assert!(found.is_empty(), "cap `{cap}` still fired: {found:?}");
        }
    }

    #[test]
    fn retry_rule_ignores_identifiers_and_nonretry_loops() {
        // `driveloop` is an identifier, not the keyword.
        let ident = "fn f() { let driveloop = retry_count; }\n";
        assert!(NoUnboundedRetry.check(&file("crates/x/src/a.rs", ident)).is_empty());
        // A loop with no retry semantics is out of scope.
        let plain = "fn f() {\n    loop {\n        if done() { break; }\n    }\n}\n";
        assert!(NoUnboundedRetry.check(&file("crates/x/src/a.rs", plain)).is_empty());
        // Bins are exempt, like the other abort-class rules.
        let bin = file("crates/x/src/bin/tool.rs", "fn main() {}");
        assert!(!NoUnboundedRetry.applies_to(&bin));
    }

    #[test]
    fn cast_rule_requires_annotation() {
        let bad = "fn f(x: f64) -> usize { x as usize }\n";
        let f = file("crates/nn/src/tensor.rs", bad);
        assert_eq!(FloatCastTruncation.check(&f).len(), 1);
        let good = "// cast: index already bounds-checked\nfn f(x: f64) -> usize { x as usize }\n";
        assert!(FloatCastTruncation
            .check(&file("crates/nn/src/tensor.rs", good))
            .is_empty());
        let ident = "fn f() { let y_as_f32_ish = 1; }\n";
        assert!(FloatCastTruncation
            .check(&file("crates/nn/src/tensor.rs", ident))
            .is_empty());
    }
}
