//! Static model-graph validator.
//!
//! A neutral, dependency-free description of a layer graph
//! ([`LayerSpec`] / [`ModelSpec`]) plus a dataflow pass
//! ([`validate_model`]) that propagates shapes symbolically — no tensor is
//! ever allocated. `autolearn-nn` converts its live layer objects into
//! these specs (via `Layer::spec`) and calls the validator before any
//! training step runs; `autolearn-core`'s pipeline does the same from the
//! model *plan* before even building the model.
//!
//! The pass detects:
//!
//! * incompatible layer chains (rank or dimension mismatches),
//! * zero / degenerate dimensions (e.g. a conv kernel larger than its
//!   input, a pooled dimension collapsing to 0),
//! * dead layers (no-op dropout, linear activation mid-chain, flatten of
//!   an already-flat tensor) — reported as warnings,
//! * parameter-count drift against the zoo's declared expectations,
//! * train-only layers (Dropout / BatchNorm) that are misconfigured or
//!   placed where they would corrupt inference (e.g. dropout as the last
//!   layer of a head).

use std::fmt;

/// Symbolic description of a single layer. Mirrors the layer set of
/// `autolearn-nn` but carries only the hyper-parameters needed for shape
/// and parameter arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpec {
    /// Fully connected `[B, input] -> [B, output]`.
    Dense { input: usize, output: usize },
    /// Element-wise non-linearity; `kind` is informational ("relu", ...).
    Activation { kind: String },
    /// Valid-padding 2-D convolution over `[B, C, H, W]`.
    Conv2D {
        in_channels: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
    },
    /// Valid-padding 3-D convolution over `[B, C, T, H, W]`.
    Conv3D {
        in_channels: usize,
        filters: usize,
        kernel_t: usize,
        kernel: usize,
        stride_t: usize,
        stride: usize,
    },
    /// Non-overlapping max pool over the trailing two dims.
    MaxPool2D { size: usize },
    /// Collapse everything after the batch dim.
    Flatten,
    /// Train-only random masking; identity at inference.
    Dropout { rate: f64 },
    /// Per-feature normalisation over `[B, F]`.
    BatchNorm1d { features: usize },
    /// Sequence reduction `[B, T, F] -> [B, hidden]`.
    Lstm { input: usize, hidden: usize },
    /// Apply `inner` independently per time step:
    /// `[B, T, ...] -> [B, T, inner_out...]`.
    TimeDistributed { inner: Box<LayerSpec> },
    /// An ordered sub-chain (how `Sequential` describes itself).
    Chain(Vec<LayerSpec>),
}

impl LayerSpec {
    /// Short human label used in reports and error locations.
    pub fn label(&self) -> String {
        match self {
            LayerSpec::Dense { input, output } => format!("Dense({input}->{output})"),
            LayerSpec::Activation { kind } => format!("Activation({kind})"),
            LayerSpec::Conv2D {
                in_channels,
                filters,
                kernel,
                stride,
            } => format!("Conv2D({in_channels}->{filters}, {kernel}x{kernel}/{stride})"),
            LayerSpec::Conv3D {
                in_channels,
                filters,
                kernel_t,
                kernel,
                stride_t,
                stride,
            } => format!(
                "Conv3D({in_channels}->{filters}, {kernel_t}x{kernel}x{kernel}/{stride_t}x{stride})"
            ),
            LayerSpec::MaxPool2D { size } => format!("MaxPool2D({size}x{size})"),
            LayerSpec::Flatten => "Flatten".to_string(),
            LayerSpec::Dropout { rate } => format!("Dropout({rate})"),
            LayerSpec::BatchNorm1d { features } => format!("BatchNorm1d({features})"),
            LayerSpec::Lstm { input, hidden } => format!("Lstm({input}->{hidden})"),
            LayerSpec::TimeDistributed { inner } => {
                format!("TimeDistributed({})", inner.label())
            }
            LayerSpec::Chain(layers) => format!("Chain[{}]", layers.len()),
        }
    }

    /// Trainable parameter count implied by the spec (matches the live
    /// layers in `autolearn-nn`; drift between the two is itself a bug the
    /// zoo tests catch).
    pub fn param_count(&self) -> u64 {
        match self {
            LayerSpec::Dense { input, output } => (input * output + output) as u64,
            LayerSpec::Conv2D {
                in_channels,
                filters,
                kernel,
                ..
            } => (filters * in_channels * kernel * kernel + filters) as u64,
            LayerSpec::Conv3D {
                in_channels,
                filters,
                kernel_t,
                kernel,
                ..
            } => (filters * in_channels * kernel_t * kernel * kernel + filters) as u64,
            LayerSpec::BatchNorm1d { features } => (2 * features) as u64,
            LayerSpec::Lstm { input, hidden } => {
                (input * 4 * hidden + hidden * 4 * hidden + 4 * hidden) as u64
            }
            LayerSpec::TimeDistributed { inner } => inner.param_count(),
            LayerSpec::Chain(layers) => layers.iter().map(LayerSpec::param_count).sum(),
            LayerSpec::Activation { .. }
            | LayerSpec::MaxPool2D { .. }
            | LayerSpec::Flatten
            | LayerSpec::Dropout { .. } => 0,
        }
    }

    /// Symbolic shape propagation: the output shape this layer produces
    /// for `input`, or a message describing why the combination is
    /// invalid. Shapes include the batch dimension at index 0.
    pub fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        match self {
            LayerSpec::Dense { input: f_in, output } => {
                let got = rank2_features(input, "Dense")?;
                if got != *f_in {
                    return Err(format!("Dense expects {f_in} input features, got {got}"));
                }
                Ok(vec![input[0], *output])
            }
            LayerSpec::Activation { .. } | LayerSpec::Dropout { .. } => Ok(input.to_vec()),
            LayerSpec::BatchNorm1d { features } => {
                let got = rank2_features(input, "BatchNorm1d")?;
                if got != *features {
                    return Err(format!(
                        "BatchNorm1d normalises {features} features, got {got}"
                    ));
                }
                Ok(input.to_vec())
            }
            LayerSpec::Conv2D {
                in_channels,
                filters,
                kernel,
                stride,
            } => {
                if input.len() != 4 {
                    return Err(format!(
                        "Conv2D expects rank-4 [B, C, H, W], got rank-{} {input:?}",
                        input.len()
                    ));
                }
                if input[1] != *in_channels {
                    return Err(format!(
                        "Conv2D expects {in_channels} input channels, got {}",
                        input[1]
                    ));
                }
                let oh = conv_dim(input[2], *kernel, *stride, "height")?;
                let ow = conv_dim(input[3], *kernel, *stride, "width")?;
                Ok(vec![input[0], *filters, oh, ow])
            }
            LayerSpec::Conv3D {
                in_channels,
                filters,
                kernel_t,
                kernel,
                stride_t,
                stride,
            } => {
                if input.len() != 5 {
                    return Err(format!(
                        "Conv3D expects rank-5 [B, C, T, H, W], got rank-{} {input:?}",
                        input.len()
                    ));
                }
                if input[1] != *in_channels {
                    return Err(format!(
                        "Conv3D expects {in_channels} input channels, got {}",
                        input[1]
                    ));
                }
                let ot = conv_dim(input[2], *kernel_t, *stride_t, "time")?;
                let oh = conv_dim(input[3], *kernel, *stride, "height")?;
                let ow = conv_dim(input[4], *kernel, *stride, "width")?;
                Ok(vec![input[0], *filters, ot, oh, ow])
            }
            LayerSpec::MaxPool2D { size } => {
                if input.len() != 4 {
                    return Err(format!(
                        "MaxPool2D expects rank-4 [B, C, H, W], got rank-{} {input:?}",
                        input.len()
                    ));
                }
                let (oh, ow) = (input[2] / size, input[3] / size);
                if oh == 0 || ow == 0 {
                    return Err(format!(
                        "MaxPool2D({size}) collapses {}x{} input to a zero dim",
                        input[2], input[3]
                    ));
                }
                Ok(vec![input[0], input[1], oh, ow])
            }
            LayerSpec::Flatten => {
                if input.len() < 2 {
                    return Err(format!("Flatten expects rank >= 2, got {input:?}"));
                }
                Ok(vec![input[0], input[1..].iter().product()])
            }
            LayerSpec::Lstm { input: f_in, hidden } => {
                if input.len() != 3 {
                    return Err(format!(
                        "Lstm expects rank-3 [B, T, F], got rank-{} {input:?}",
                        input.len()
                    ));
                }
                if input[2] != *f_in {
                    return Err(format!(
                        "Lstm expects {f_in} input features, got {}",
                        input[2]
                    ));
                }
                Ok(vec![input[0], *hidden])
            }
            LayerSpec::TimeDistributed { inner } => {
                if input.len() < 3 {
                    return Err(format!(
                        "TimeDistributed expects rank >= 3 [B, T, ...], got {input:?}"
                    ));
                }
                let mut merged = vec![input[0] * input[1]];
                merged.extend_from_slice(&input[2..]);
                let inner_out = inner.output_shape(&merged)?;
                let mut out = vec![input[0], input[1]];
                out.extend_from_slice(&inner_out[1..]);
                Ok(out)
            }
            LayerSpec::Chain(layers) => {
                let mut shape = input.to_vec();
                for layer in layers {
                    shape = layer.output_shape(&shape)?;
                }
                Ok(shape)
            }
        }
    }
}

fn rank2_features(input: &[usize], who: &str) -> Result<usize, String> {
    if input.len() != 2 {
        return Err(format!(
            "{who} expects rank-2 [B, F], got rank-{} {input:?}",
            input.len()
        ));
    }
    Ok(input[1])
}

fn conv_dim(dim: usize, kernel: usize, stride: usize, axis: &str) -> Result<usize, String> {
    if kernel == 0 || stride == 0 {
        return Err(format!("kernel/stride must be >= 1 on {axis}"));
    }
    if dim < kernel {
        return Err(format!("{axis} {dim} is smaller than kernel {kernel}"));
    }
    Ok((dim - kernel) / stride + 1)
}

/// Symbolic description of a whole model: a trunk feeding one or more
/// heads, with an optional auxiliary feature vector concatenated between
/// trunk and merge (how the Memory model injects control history).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    pub name: String,
    /// Trunk input shape, batch dim included (use batch = 1).
    pub input: Vec<usize>,
    /// The trunk chain.
    pub layers: Vec<LayerSpec>,
    /// Width of an auxiliary vector concatenated to the trunk output
    /// features before the merge chain runs (`None` = no concat).
    pub aux_width: Option<usize>,
    /// Post-concat chain (empty when the trunk output feeds heads as-is).
    pub merge: Vec<LayerSpec>,
    /// Named output heads, each fed the final feature vector.
    pub heads: Vec<(String, Vec<LayerSpec>)>,
    /// Total trainable parameters the zoo declares for this architecture,
    /// if it declares one. Drift between this and the spec-derived count
    /// is an error.
    pub declared_params: Option<u64>,
    /// Feature width the zoo says the trunk(+merge) produces.
    pub declared_feature_dim: Option<usize>,
}

impl ModelSpec {
    /// Total trainable parameters implied by the spec (trunk + merge +
    /// heads).
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(LayerSpec::param_count).sum::<u64>()
            + self.merge.iter().map(LayerSpec::param_count).sum::<u64>()
            + self
                .heads
                .iter()
                .flat_map(|(_, ls)| ls.iter())
                .map(LayerSpec::param_count)
                .sum::<u64>()
    }
}

/// One defect found by [`validate_model`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphError {
    /// Where in the graph: `trunk[2] Conv2D(...)`, `head steering[0] ...`,
    /// or `model` for whole-graph defects.
    pub location: String,
    pub message: String,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.location, self.message)
    }
}

/// Render a batch of graph errors as a readable multi-line block.
pub fn format_errors(errors: &[GraphError]) -> String {
    let mut out = String::new();
    for e in errors {
        out.push_str("  - ");
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

/// Per-layer record in a successful validation.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    pub location: String,
    pub layer: String,
    pub output_shape: Vec<usize>,
    pub params: u64,
}

/// Outcome of a successful [`validate_model`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphReport {
    pub name: String,
    pub input: Vec<usize>,
    pub steps: Vec<StepReport>,
    /// Width of the feature vector the heads consume.
    pub feature_dim: usize,
    pub total_params: u64,
    /// Non-fatal defects: dead layers, suspicious placements.
    pub warnings: Vec<String>,
}

impl GraphReport {
    /// Human-readable summary table (one line per layer).
    pub fn render(&self) -> String {
        let mut out = format!("model {} input {:?}\n", self.name, self.input);
        for s in &self.steps {
            out.push_str(&format!(
                "  {:<24} {:<34} out {:?}  params {}\n",
                s.location, s.layer, s.output_shape, s.params
            ));
        }
        out.push_str(&format!(
            "  feature_dim {}  total_params {}\n",
            self.feature_dim, self.total_params
        ));
        for w in &self.warnings {
            out.push_str(&format!("  warning: {w}\n"));
        }
        out
    }
}

/// Walk one chain, accumulating step reports / errors. Returns the final
/// shape, or `None` if propagation had to stop at a broken layer.
fn propagate_chain(
    prefix: &str,
    mut shape: Vec<usize>,
    layers: &[LayerSpec],
    steps: &mut Vec<StepReport>,
    warnings: &mut Vec<String>,
    errors: &mut Vec<GraphError>,
) -> Option<Vec<usize>> {
    for (i, layer) in layers.iter().enumerate() {
        let location = format!("{prefix}[{i}]");
        check_layer_config(&location, layer, errors);
        dead_layer_warnings(&location, layer, &shape, warnings);
        match layer.output_shape(&shape) {
            Ok(out) => {
                if let Some(zero) = out.iter().position(|&d| d == 0) {
                    errors.push(GraphError {
                        location: format!("{location} {}", layer.label()),
                        message: format!("degenerate output: dim {zero} of {out:?} is zero"),
                    });
                    return None;
                }
                steps.push(StepReport {
                    location: location.clone(),
                    layer: layer.label(),
                    output_shape: out.clone(),
                    params: layer.param_count(),
                });
                shape = out;
            }
            Err(message) => {
                errors.push(GraphError {
                    location: format!("{location} {}", layer.label()),
                    message,
                });
                return None;
            }
        }
    }
    Some(shape)
}

/// Configuration checks that do not depend on the input shape.
fn check_layer_config(location: &str, layer: &LayerSpec, errors: &mut Vec<GraphError>) {
    match layer {
        LayerSpec::Dropout { rate } => {
            if !(0.0..1.0).contains(rate) {
                errors.push(GraphError {
                    location: format!("{location} {}", layer.label()),
                    message: format!(
                        "dropout rate {rate} outside [0, 1): a rate >= 1 zeroes every \
                         activation and the layer cannot be disabled at inference"
                    ),
                });
            }
        }
        LayerSpec::Dense { input, output } => {
            if *input == 0 || *output == 0 {
                errors.push(GraphError {
                    location: format!("{location} {}", layer.label()),
                    message: "dense layer with a zero-width side".to_string(),
                });
            }
        }
        LayerSpec::Lstm { input, hidden } => {
            if *input == 0 || *hidden == 0 {
                errors.push(GraphError {
                    location: format!("{location} {}", layer.label()),
                    message: "lstm with a zero-width side".to_string(),
                });
            }
        }
        LayerSpec::BatchNorm1d { features } => {
            if *features == 0 {
                errors.push(GraphError {
                    location: format!("{location} {}", layer.label()),
                    message: "batchnorm over zero features".to_string(),
                });
            }
        }
        LayerSpec::TimeDistributed { inner } => {
            check_layer_config(location, inner, errors);
        }
        LayerSpec::Chain(layers) => {
            for (i, l) in layers.iter().enumerate() {
                check_layer_config(&format!("{location}.{i}"), l, errors);
            }
        }
        _ => {}
    }
}

/// Dead-layer detection: layers that provably do nothing in this position.
fn dead_layer_warnings(
    location: &str,
    layer: &LayerSpec,
    input: &[usize],
    warnings: &mut Vec<String>,
) {
    match layer {
        LayerSpec::Dropout { rate } if *rate == 0.0 => {
            warnings.push(format!("{location}: Dropout(0) is a no-op (dead layer)"));
        }
        LayerSpec::Activation { kind } if kind == "linear" => {
            warnings.push(format!(
                "{location}: linear activation is a no-op (dead layer)"
            ));
        }
        LayerSpec::Flatten if input.len() == 2 => {
            warnings.push(format!(
                "{location}: Flatten of already-flat {input:?} is a no-op (dead layer)"
            ));
        }
        _ => {}
    }
}

/// Train-only layers must not sit at a head output: dropout there injects
/// train/inference skew directly into the control signal, and batchnorm
/// at the output re-centres the prediction.
fn head_tail_check(head: &str, layers: &[LayerSpec], errors: &mut Vec<GraphError>) {
    if let Some(last) = layers.last() {
        match last {
            LayerSpec::Dropout { .. } | LayerSpec::BatchNorm1d { .. } => {
                errors.push(GraphError {
                    location: format!("head {head}"),
                    message: format!(
                        "train-only layer {} is the final layer of a head output",
                        last.label()
                    ),
                });
            }
            _ => {}
        }
    }
}

/// Validate a model graph symbolically. On success returns a
/// [`GraphReport`] with per-layer shapes, parameter totals and any
/// warnings; on failure returns every [`GraphError`] that could be
/// established (shape propagation stops at the first broken layer of a
/// chain, but independent chains are still checked).
pub fn validate_model(spec: &ModelSpec) -> Result<GraphReport, Vec<GraphError>> {
    let mut steps = Vec::new();
    let mut warnings = Vec::new();
    let mut errors = Vec::new();

    if spec.input.iter().any(|&d| d == 0) {
        errors.push(GraphError {
            location: "model".to_string(),
            message: format!("input shape {:?} has a zero dimension", spec.input),
        });
    }
    if spec.heads.is_empty() {
        errors.push(GraphError {
            location: "model".to_string(),
            message: "model has no output heads: the whole graph is dead".to_string(),
        });
    }

    // Trunk, then optional concat + merge.
    let trunk_out = if spec.input.iter().any(|&d| d == 0) {
        None
    } else {
        propagate_chain(
            "trunk",
            spec.input.clone(),
            &spec.layers,
            &mut steps,
            &mut warnings,
            &mut errors,
        )
    };

    let feature_dim = trunk_out.and_then(|shape| {
        if shape.len() != 2 {
            errors.push(GraphError {
                location: "trunk".to_string(),
                message: format!(
                    "trunk must end in a rank-2 feature map [B, F] to feed heads, got {shape:?}"
                ),
            });
            return None;
        }
        let mut feat = shape[1];
        if let Some(aux) = spec.aux_width {
            if aux == 0 {
                errors.push(GraphError {
                    location: "merge".to_string(),
                    message: "auxiliary input declared with zero width".to_string(),
                });
            }
            feat += aux;
        }
        let merged = propagate_chain(
            "merge",
            vec![shape[0], feat],
            &spec.merge,
            &mut steps,
            &mut warnings,
            &mut errors,
        )?;
        if merged.len() != 2 {
            errors.push(GraphError {
                location: "merge".to_string(),
                message: format!("merge must produce [B, F], got {merged:?}"),
            });
            return None;
        }
        Some(merged[1])
    });

    if let (Some(found), Some(declared)) = (feature_dim, spec.declared_feature_dim) {
        if found != declared {
            errors.push(GraphError {
                location: "model".to_string(),
                message: format!(
                    "feature-dim drift: graph produces {found}, zoo declares {declared}"
                ),
            });
        }
    }

    // Heads are validated independently so one broken head does not mask
    // another. When the trunk already failed, fall back to the declared
    // feature dim so head-internal defects still surface.
    let head_input_dim = feature_dim.or(spec.declared_feature_dim);
    for (name, layers) in &spec.heads {
        head_tail_check(name, layers, &mut errors);
        if let Some(dim) = head_input_dim {
            if let Some(out) = propagate_chain(
                &format!("head {name}"),
                vec![spec.input.first().copied().unwrap_or(1), dim],
                layers,
                &mut steps,
                &mut warnings,
                &mut errors,
            ) {
                if out.len() != 2 || out[1] == 0 {
                    errors.push(GraphError {
                        location: format!("head {name}"),
                        message: format!("head must produce [B, outputs>=1], got {out:?}"),
                    });
                }
            }
        }
    }

    let total_params = spec.total_params();

    if let Some(declared) = spec.declared_params {
        if declared != total_params {
            errors.push(GraphError {
                location: "model".to_string(),
                message: format!(
                    "parameter-count drift: graph has {total_params} trainable parameters, \
                     zoo declares {declared}"
                ),
            });
        }
    }

    if errors.is_empty() {
        Ok(GraphReport {
            name: spec.name.clone(),
            input: spec.input.clone(),
            steps,
            feature_dim: feature_dim.unwrap_or(0),
            total_params,
            warnings,
        })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(i: usize, o: usize) -> LayerSpec {
        LayerSpec::Dense { input: i, output: o }
    }

    fn simple_spec(layers: Vec<LayerSpec>, heads: Vec<(String, Vec<LayerSpec>)>) -> ModelSpec {
        ModelSpec {
            name: "test".to_string(),
            input: vec![1, 8],
            layers,
            aux_width: None,
            merge: Vec::new(),
            heads,
            declared_params: None,
            declared_feature_dim: None,
        }
    }

    #[test]
    fn valid_dense_chain_passes() {
        let spec = simple_spec(
            vec![dense(8, 16), LayerSpec::Activation { kind: "relu".into() }],
            vec![("out".to_string(), vec![dense(16, 1)])],
        );
        let report = validate_model(&spec).expect("valid graph");
        assert_eq!(report.feature_dim, 16);
        assert_eq!(report.total_params, (8 * 16 + 16 + 16 + 1) as u64);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn dense_dim_mismatch_is_rejected() {
        let spec = simple_spec(
            vec![dense(8, 16), dense(32, 4)],
            vec![("out".to_string(), vec![dense(4, 1)])],
        );
        let errors = validate_model(&spec).unwrap_err();
        assert!(
            errors.iter().any(|e| e.location.contains("trunk[1]")),
            "expected trunk[1] mismatch, got {errors:?}"
        );
    }

    #[test]
    fn conv_kernel_larger_than_input_is_degenerate() {
        let spec = ModelSpec {
            name: "tiny".to_string(),
            input: vec![1, 1, 4, 4],
            layers: vec![
                LayerSpec::Conv2D {
                    in_channels: 1,
                    filters: 8,
                    kernel: 5,
                    stride: 2,
                },
                LayerSpec::Flatten,
            ],
            aux_width: None,
            merge: Vec::new(),
            heads: vec![("s".to_string(), vec![dense(8, 1)])],
            declared_params: None,
            declared_feature_dim: None,
        };
        let errors = validate_model(&spec).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("smaller than kernel")));
    }

    #[test]
    fn zero_dims_and_missing_heads_are_errors() {
        let spec = ModelSpec {
            name: "dead".to_string(),
            input: vec![1, 0],
            layers: Vec::new(),
            aux_width: None,
            merge: Vec::new(),
            heads: Vec::new(),
            declared_params: None,
            declared_feature_dim: None,
        };
        let errors = validate_model(&spec).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("zero dimension")));
        assert!(errors.iter().any(|e| e.message.contains("no output heads")));
    }

    #[test]
    fn dead_layers_warn_but_pass() {
        let spec = simple_spec(
            vec![
                dense(8, 8),
                LayerSpec::Dropout { rate: 0.0 },
                LayerSpec::Activation { kind: "linear".into() },
                LayerSpec::Flatten,
            ],
            vec![("out".to_string(), vec![dense(8, 1)])],
        );
        let report = validate_model(&spec).expect("dead layers are warnings, not errors");
        assert_eq!(report.warnings.len(), 3, "{:?}", report.warnings);
    }

    #[test]
    fn dropout_rate_out_of_range_is_error() {
        let spec = simple_spec(
            vec![LayerSpec::Dropout { rate: 1.0 }],
            vec![("out".to_string(), vec![dense(8, 1)])],
        );
        let errors = validate_model(&spec).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("outside [0, 1)")));
    }

    #[test]
    fn train_only_layer_at_head_tail_is_error() {
        let spec = simple_spec(
            vec![dense(8, 8)],
            vec![(
                "steering".to_string(),
                vec![dense(8, 1), LayerSpec::Dropout { rate: 0.5 }],
            )],
        );
        let errors = validate_model(&spec).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("train-only layer")));
    }

    #[test]
    fn param_drift_is_detected() {
        let mut spec = simple_spec(
            vec![dense(8, 16)],
            vec![("out".to_string(), vec![dense(16, 1)])],
        );
        spec.declared_params = Some(999);
        let errors = validate_model(&spec).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("parameter-count drift")));
    }

    #[test]
    fn memory_style_concat_and_merge() {
        let mut spec = simple_spec(
            vec![dense(8, 64)],
            vec![("out".to_string(), vec![dense(32, 1)])],
        );
        spec.aux_width = Some(8);
        spec.merge = vec![dense(72, 32)];
        spec.declared_feature_dim = Some(32);
        let report = validate_model(&spec).expect("concat graph valid");
        assert_eq!(report.feature_dim, 32);
    }

    #[test]
    fn time_distributed_and_lstm_propagate() {
        let spec = ModelSpec {
            name: "rnn".to_string(),
            input: vec![1, 3, 1, 12, 12],
            layers: vec![
                LayerSpec::TimeDistributed {
                    inner: Box::new(LayerSpec::Chain(vec![
                        LayerSpec::Conv2D {
                            in_channels: 1,
                            filters: 4,
                            kernel: 3,
                            stride: 2,
                        },
                        LayerSpec::Flatten,
                        dense(4 * 5 * 5, 16),
                    ])),
                },
                LayerSpec::Lstm { input: 16, hidden: 8 },
            ],
            aux_width: None,
            merge: Vec::new(),
            heads: vec![("s".to_string(), vec![dense(8, 1)])],
            declared_params: None,
            declared_feature_dim: Some(8),
        };
        let report = validate_model(&spec).expect("rnn graph valid");
        assert_eq!(report.feature_dim, 8);
    }
}
