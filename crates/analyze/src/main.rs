//! CLI for the workspace lint engine.
//!
//! ```text
//! cargo run -p autolearn-analyze -- --workspace [--root DIR] [--json] [--list-rules]
//!                                   [--baseline FILE | --write-baseline FILE]
//! ```
//!
//! Exit status: 0 when no active (non-allowlisted) findings, 1 when
//! findings remain, 2 on usage / IO errors. With `--baseline`, 0/1 instead
//! reflect the ratchet: 0 when no count grew past the committed snapshot
//! (the snapshot is rewritten in place when counts shrink), 1 otherwise.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use autolearn_analyze::lint::baseline::{compare, Baseline};
use autolearn_analyze::lint::{report, Linter};

struct Args {
    workspace: bool,
    root: PathBuf,
    json: bool,
    list_rules: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        json: false,
        list_rules: false,
        baseline: None,
        write_baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                args.root = PathBuf::from(dir);
            }
            "--baseline" => {
                let file = it.next().ok_or("--baseline needs a file argument")?;
                args.baseline = Some(PathBuf::from(file));
            }
            "--write-baseline" => {
                let file = it.next().ok_or("--write-baseline needs a file argument")?;
                args.write_baseline = Some(PathBuf::from(file));
            }
            "--help" | "-h" => {
                return Err("usage: autolearn-analyze --workspace [--root DIR] [--json] \
                            [--list-rules] [--baseline FILE | --write-baseline FILE]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if args.baseline.is_some() && args.write_baseline.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".to_string());
    }
    Ok(args)
}

/// Walk up from `start` to the manifest that declares `[workspace]`.
fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = find_workspace_root(&args.root);

    let linter = Linter::new().with_allowlist_file(&root.join("crates/analyze/allow.toml"))?;

    if args.list_rules {
        for (id, description) in linter.rule_catalog() {
            println!("{id:<24} {description}");
        }
        return Ok(true);
    }
    if !args.workspace {
        return Err("nothing to do: pass --workspace (and see --help)".to_string());
    }

    let outcome = linter.run_workspace(&root)?;

    if let Some(path) = &args.write_baseline {
        let json = report::render_json(&outcome);
        std::fs::write(path, json)
            .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))?;
        println!(
            "autolearn-analyze: wrote baseline ({} active, {} allowlisted) to {}",
            outcome.active.len(),
            outcome.allowlisted.len(),
            path.display()
        );
        return Ok(true);
    }

    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path).map_err(|e| {
            format!(
                "cannot read baseline {}: {e} (generate one with --write-baseline)",
                path.display()
            )
        })?;
        let snapshot = Baseline::parse(&text)?;
        let current = Baseline::from_outcome(&outcome);
        let cmp = compare(&current, &snapshot);
        if !cmp.regressions.is_empty() {
            for regression in &cmp.regressions {
                eprintln!("autolearn-analyze: baseline regression: {regression}");
            }
            return Ok(false);
        }
        if cmp.improved {
            std::fs::write(path, report::render_json(&outcome))
                .map_err(|e| format!("cannot rewrite baseline {}: {e}", path.display()))?;
            println!(
                "autolearn-analyze: findings shrank — baseline ratcheted down at {}",
                path.display()
            );
        } else {
            println!(
                "autolearn-analyze: baseline ratchet clean ({} active, {} allowlisted)",
                outcome.active.len(),
                outcome.allowlisted.len()
            );
        }
        return Ok(true);
    }

    if args.json {
        print!("{}", report::render_json(&outcome));
    } else {
        print!("{}", report::render_human(&outcome));
    }
    Ok(outcome.active.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("autolearn-analyze: {message}");
            ExitCode::from(2)
        }
    }
}
