//! CLI for the workspace lint engine.
//!
//! ```text
//! cargo run -p autolearn-analyze -- --workspace [--root DIR] [--json] [--list-rules]
//! ```
//!
//! Exit status: 0 when no active (non-allowlisted) findings, 1 when
//! findings remain, 2 on usage / IO errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use autolearn_analyze::lint::{report, Linter};

struct Args {
    workspace: bool,
    root: PathBuf,
    json: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        json: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                args.root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                return Err("usage: autolearn-analyze --workspace [--root DIR] [--json] \
                            [--list-rules]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Walk up from `start` to the manifest that declares `[workspace]`.
fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = find_workspace_root(&args.root);

    let linter = Linter::new().with_allowlist_file(&root.join("crates/analyze/allow.toml"))?;

    if args.list_rules {
        for (id, description) in linter.rule_catalog() {
            println!("{id:<24} {description}");
        }
        return Ok(true);
    }
    if !args.workspace {
        return Err("nothing to do: pass --workspace (and see --help)".to_string());
    }

    let outcome = linter.run_workspace(&root)?;
    if args.json {
        print!("{}", report::render_json(&outcome));
    } else {
        print!("{}", report::render_human(&outcome));
    }
    Ok(outcome.active.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("autolearn-analyze: {message}");
            ExitCode::from(2)
        }
    }
}
