//! Bulk-transfer and RPC timing models.

use crate::link::Path;
use autolearn_util::SimDuration;
use serde::{Deserialize, Serialize};

/// A bulk transfer (the paper's "copies the training data using rsync").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransferSpec {
    pub bytes: u64,
    /// Per-connection setup cost (ssh handshake + rsync file scan), s.
    pub handshake_s: f64,
    /// Protocol efficiency (TCP+ssh overhead), fraction of bandwidth
    /// actually delivered to payload.
    pub efficiency: f64,
}

impl TransferSpec {
    /// rsync-over-ssh defaults.
    pub fn rsync(bytes: u64) -> TransferSpec {
        TransferSpec {
            bytes,
            handshake_s: 1.2,
            efficiency: 0.85,
        }
    }

    /// Object-store PUT/GET (HTTP, keep-alive).
    pub fn object_store(bytes: u64) -> TransferSpec {
        TransferSpec {
            bytes,
            handshake_s: 0.15,
            efficiency: 0.9,
        }
    }
}

/// Time to move `spec` across `path`: handshake + latency + serialisation
/// at the bottleneck.
pub fn transfer_time(path: &Path, spec: &TransferSpec) -> SimDuration {
    let serialisation =
        spec.bytes as f64 / (path.bottleneck_bandwidth() * spec.efficiency.clamp(0.05, 1.0));
    SimDuration::from_secs(spec.handshake_s + path.one_way_latency() + serialisation)
}

/// Round-trip time for a small request/response pair (remote inference):
/// request serialisation + RTT + response serialisation.
pub fn rpc_round_trip(path: &Path, request_bytes: u64, response_bytes: u64) -> SimDuration {
    let bw = path.bottleneck_bandwidth();
    let ser = (request_bytes + response_bytes) as f64 / bw;
    SimDuration::from_secs(2.0 * path.one_way_latency() + ser)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, LinkPreset};

    fn flat_path(bw: f64, latency: f64) -> Path {
        Path::new(vec![Link {
            name: "test".into(),
            latency_s: latency,
            bandwidth_bps: bw,
            jitter_s: 0.0,
            loss: 0.0,
        }])
    }

    #[test]
    fn transfer_scales_with_size() {
        let p = flat_path(1e6, 0.01);
        let small = transfer_time(&p, &TransferSpec::rsync(1_000_000));
        let large = transfer_time(&p, &TransferSpec::rsync(10_000_000));
        assert!(large.as_secs() > small.as_secs());
        // 10 MB at 1 MB/s × 0.85 ≈ 11.8 s + handshake.
        assert!((large.as_secs() - (1.2 + 0.01 + 10.0 / 0.85)).abs() < 0.1);
    }

    #[test]
    fn handshake_dominates_tiny_transfers() {
        let p = flat_path(1e9, 0.001);
        let t = transfer_time(&p, &TransferSpec::rsync(1024));
        assert!((t.as_secs() - 1.2).abs() < 0.01);
        let o = transfer_time(&p, &TransferSpec::object_store(1024));
        assert!(o.as_secs() < t.as_secs());
    }

    #[test]
    fn rpc_cost_is_rtt_plus_serialisation() {
        let p = flat_path(1e6, 0.005);
        // 10 kB frame + 16 B response at 1 MB/s ≈ 10 ms + 10 ms RTT.
        let t = rpc_round_trip(&p, 10_000, 16);
        assert!((t.as_secs() - (0.010 + 0.010016)).abs() < 1e-4);
    }

    #[test]
    fn realistic_tub_upload_takes_minutes_on_wifi() {
        // A 20k-record tub of 40x30 grayscale ≈ 20000 * 1.2 kB ≈ 24 MB
        // plus JSON; call it 30 MB. Over the car's WiFi path.
        let p = Path::car_to_cloud();
        let t = transfer_time(&p, &TransferSpec::rsync(30_000_000));
        assert!(
            t.as_secs() > 5.0 && t.as_secs() < 60.0,
            "30 MB over WiFi took {t}"
        );
    }

    #[test]
    fn datacenter_rpc_is_sub_millisecond() {
        let p = Path::of_presets(&[LinkPreset::Datacenter]);
        let t = rpc_round_trip(&p, 5_000, 16);
        assert!(t.as_secs() < 0.001, "{t}");
    }
}
