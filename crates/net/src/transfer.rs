//! Bulk-transfer and RPC timing models.
//!
//! Both models account for the full [`Link`](crate::link::Link) parameter
//! set: latency and bandwidth directly, jitter as a deterministic one-sigma
//! queueing charge per traversal, and loss through a geometric retransmit
//! model — with expected loss `p`, every payload byte is sent `1/(1-p)`
//! times on average, so serialisation time divides by `1 - p`. Loss is
//! clamped below 1.0 so a fully dead link yields a large-but-finite time
//! instead of a division by zero.

use crate::link::Path;
use autolearn_util::units::{Bytes, SimSeconds};
use autolearn_util::SimDuration;
use serde::{Deserialize, Serialize};

/// Ceiling on the loss rate fed to the geometric retransmit model: a link
/// reporting `loss >= 1.0` would otherwise produce an infinite (or
/// negative) expected transfer time. 0.95 caps the retransmit factor at
/// 20x, which is "effectively unusable" without being unrepresentable.
pub const MAX_EFFECTIVE_LOSS: f64 = 0.95;

/// A bulk transfer (the paper's "copies the training data using rsync").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransferSpec {
    /// Payload size. Unit-typed: a duration or a rate cannot end up here.
    pub bytes: Bytes,
    /// Per-connection setup cost (ssh handshake + rsync file scan), s.
    pub handshake_s: f64,
    /// Protocol efficiency (TCP+ssh overhead), fraction of bandwidth
    /// actually delivered to payload.
    pub efficiency: f64,
}

impl TransferSpec {
    /// rsync-over-ssh defaults.
    pub fn rsync(bytes: Bytes) -> TransferSpec {
        TransferSpec {
            bytes,
            handshake_s: 1.2,
            efficiency: 0.85,
        }
    }

    /// Object-store PUT/GET (HTTP, keep-alive).
    pub fn object_store(bytes: Bytes) -> TransferSpec {
        TransferSpec {
            bytes,
            handshake_s: 0.15,
            efficiency: 0.9,
        }
    }
}

/// Expected serialisation time for `bytes` across `path` at `efficiency`,
/// including geometric-model retransmits for the path's composed loss.
/// Pure unit algebra: `Bytes / BytesPerSec -> SimSeconds`, stretched by the
/// retransmit factor.
pub(crate) fn serialisation_time(path: &Path, bytes: Bytes, efficiency: f64) -> SimSeconds {
    let goodput = path.bottleneck_bandwidth() * efficiency.clamp(0.05, 1.0);
    let loss = path.loss().clamp(0.0, MAX_EFFECTIVE_LOSS);
    bytes / goodput / (1.0 - loss)
}

/// Fixed per-attempt overhead: handshake, one-way latency, and one sigma of
/// queueing jitter charged deterministically.
pub(crate) fn overhead_time(path: &Path, spec: &TransferSpec) -> SimSeconds {
    SimSeconds::from_secs(spec.handshake_s + path.one_way_latency() + path.jitter())
}

/// Time to move `spec` across `path`: handshake + latency + jitter +
/// loss-adjusted serialisation at the bottleneck.
pub fn transfer_time(path: &Path, spec: &TransferSpec) -> SimDuration {
    overhead_time(path, spec) + serialisation_time(path, spec.bytes, spec.efficiency)
}

/// Round-trip time for a small request/response pair (remote inference):
/// request serialisation + RTT + response serialisation, with jitter and
/// retransmits accounted the same way as bulk transfers.
pub fn rpc_round_trip(path: &Path, request: Bytes, response: Bytes) -> SimDuration {
    let ser = serialisation_time(path, request + response, 1.0);
    SimSeconds::from_secs(2.0 * (path.one_way_latency() + path.jitter())) + ser
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, LinkPreset};

    fn flat_path(bw: f64, latency: f64) -> Path {
        lossy_path(bw, latency, 0.0, 0.0)
    }

    fn lossy_path(bw: f64, latency: f64, jitter: f64, loss: f64) -> Path {
        Path::new(vec![Link {
            name: "test".into(),
            latency_s: latency,
            bandwidth_bps: bw,
            jitter_s: jitter,
            loss,
        }])
    }

    #[test]
    fn transfer_scales_with_size() {
        let p = flat_path(1e6, 0.01);
        let small = transfer_time(&p, &TransferSpec::rsync(Bytes::new(1_000_000)));
        let large = transfer_time(&p, &TransferSpec::rsync(Bytes::new(10_000_000)));
        assert!(large.as_secs() > small.as_secs());
        // 10 MB at 1 MB/s × 0.85 ≈ 11.8 s + handshake.
        assert!((large.as_secs() - (1.2 + 0.01 + 10.0 / 0.85)).abs() < 0.1);
    }

    #[test]
    fn handshake_dominates_tiny_transfers() {
        let p = flat_path(1e9, 0.001);
        let t = transfer_time(&p, &TransferSpec::rsync(Bytes::new(1024)));
        assert!((t.as_secs() - 1.2).abs() < 0.01);
        let o = transfer_time(&p, &TransferSpec::object_store(Bytes::new(1024)));
        assert!(o.as_secs() < t.as_secs());
    }

    #[test]
    fn loss_inflates_serialisation_geometrically() {
        let clean = lossy_path(1e6, 0.0, 0.0, 0.0);
        let lossy = lossy_path(1e6, 0.0, 0.0, 0.2);
        let spec = TransferSpec::rsync(Bytes::new(10_000_000));
        let t_clean = transfer_time(&clean, &spec).as_secs() - spec.handshake_s;
        let t_lossy = transfer_time(&lossy, &spec).as_secs() - spec.handshake_s;
        // 20% loss ⇒ every byte sent 1/(1-0.2) = 1.25x on average.
        assert!((t_lossy / t_clean - 1.25).abs() < 1e-9, "{}", t_lossy / t_clean);
    }

    #[test]
    fn total_loss_is_clamped_finite() {
        let dead = lossy_path(1e6, 0.0, 0.0, 1.0);
        let t = transfer_time(&dead, &TransferSpec::rsync(Bytes::new(1_000_000)));
        assert!(t.as_secs().is_finite());
        // Clamped at MAX_EFFECTIVE_LOSS: 20x the clean serialisation.
        let clean = transfer_time(&lossy_path(1e6, 0.0, 0.0, 0.0), &TransferSpec::rsync(Bytes::new(1_000_000)));
        let ratio = (t.as_secs() - 1.2) / (clean.as_secs() - 1.2);
        assert!((ratio - 20.0).abs() < 1e-6, "ratio {ratio}");
        // loss > 1.0 behaves identically to loss = 1.0.
        let worse = transfer_time(&lossy_path(1e6, 0.0, 0.0, 1.5), &TransferSpec::rsync(Bytes::new(1_000_000)));
        assert_eq!(t, worse);
    }

    #[test]
    fn jitter_adds_deterministic_latency() {
        let calm = lossy_path(1e9, 0.01, 0.0, 0.0);
        let jittery = lossy_path(1e9, 0.01, 0.004, 0.0);
        let spec = TransferSpec::object_store(Bytes::new(1024));
        let d = transfer_time(&jittery, &spec).as_secs() - transfer_time(&calm, &spec).as_secs();
        assert!((d - 0.004).abs() < 1e-9, "jitter charge {d}");
        // Deterministic: same inputs, same time.
        assert_eq!(transfer_time(&jittery, &spec), transfer_time(&jittery, &spec));
    }

    #[test]
    fn rpc_cost_is_rtt_plus_serialisation() {
        let p = flat_path(1e6, 0.005);
        // 10 kB frame + 16 B response at 1 MB/s ≈ 10 ms + 10 ms RTT.
        let t = rpc_round_trip(&p, Bytes::new(10_000), Bytes::new(16));
        assert!((t.as_secs() - (0.010 + 0.010016)).abs() < 1e-4);
    }

    #[test]
    fn rpc_pays_jitter_and_loss() {
        let clean = lossy_path(1e6, 0.005, 0.0, 0.0);
        let rough = lossy_path(1e6, 0.005, 0.002, 0.5);
        let t_clean = rpc_round_trip(&clean, Bytes::new(10_000), Bytes::new(16)).as_secs();
        let t_rough = rpc_round_trip(&rough, Bytes::new(10_000), Bytes::new(16)).as_secs();
        // 2 sigma of jitter on the round trip + doubled serialisation.
        let expected = t_clean + 2.0 * 0.002 + 0.010016;
        assert!((t_rough - expected).abs() < 1e-6, "{t_rough} vs {expected}");
    }

    #[test]
    fn realistic_tub_upload_takes_minutes_on_wifi() {
        // A 20k-record tub of 40x30 grayscale ≈ 20000 * 1.2 kB ≈ 24 MB
        // plus JSON; call it 30 MB. Over the car's WiFi path, including the
        // ~1.1% composed loss and its retransmits.
        let p = Path::car_to_cloud();
        let t = transfer_time(&p, &TransferSpec::rsync(Bytes::new(30_000_000)));
        assert!(
            t.as_secs() > 5.0 && t.as_secs() < 60.0,
            "30 MB over WiFi took {t}"
        );
        // The lossy path is strictly slower than a loss-free clone of it.
        let mut clean = p.clone();
        for hop in &mut clean.hops {
            hop.loss = 0.0;
            hop.jitter_s = 0.0;
        }
        let t_clean = transfer_time(&clean, &TransferSpec::rsync(Bytes::new(30_000_000)));
        assert!(t.as_secs() > t_clean.as_secs());
    }

    #[test]
    fn datacenter_rpc_is_sub_millisecond() {
        let p = Path::of_presets(&[LinkPreset::Datacenter]);
        let t = rpc_round_trip(&p, Bytes::new(5_000), Bytes::new(16));
        assert!(t.as_secs() < 0.001, "{t}");
    }
}
