//! Fault-aware, resumable transfers.
//!
//! [`ResumableTransfer`] is the rsync-shaped counterpart of
//! [`transfer_time`](crate::transfer::transfer_time): it consults a
//! [`FaultPlan`] on every attempt and tracks how much of the payload made it
//! across, so a retry after a mid-transfer fault only re-sends the delta
//! (plus a fresh handshake) — exactly what rsync does when a student's WiFi
//! drops halfway through a tub upload.

use crate::link::Path;
use crate::transfer::{overhead_time, serialisation_time, TransferSpec};
use autolearn_obs::{AttrValue, Obs};
use autolearn_util::fault::{FaultKind, FaultPlan, FaultSite};
use autolearn_util::SimDuration;

/// Why a transfer attempt died.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferFailure {
    /// The link dropped; it stays down for the carried duration.
    LinkFlap { downtime: SimDuration },
    /// The stream froze and the application timed out.
    Stall { stalled_for: SimDuration },
}

impl std::fmt::Display for TransferFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferFailure::LinkFlap { downtime } => {
                write!(f, "link flapped ({downtime} down)")
            }
            TransferFailure::Stall { stalled_for } => {
                write!(f, "transfer stalled ({stalled_for} timeout)")
            }
        }
    }
}

impl std::error::Error for TransferFailure {}

/// A bulk transfer that survives faults by resuming from where it died.
#[derive(Debug, Clone)]
pub struct ResumableTransfer {
    spec: TransferSpec,
    completed: f64,
}

impl ResumableTransfer {
    /// Start a transfer of `spec`; nothing has been sent yet.
    pub fn new(spec: TransferSpec) -> ResumableTransfer {
        ResumableTransfer {
            spec,
            completed: 0.0,
        }
    }

    /// Fraction of the payload that has crossed the path so far.
    pub fn completed_fraction(&self) -> f64 {
        self.completed
    }

    /// Whether the payload is fully across.
    pub fn is_complete(&self) -> bool {
        self.completed >= 1.0
    }

    /// Run one attempt over `path`, consulting `plan` at the fault site.
    ///
    /// On success, returns the simulated time the attempt took (handshake +
    /// latency/jitter + loss-adjusted serialisation of the *remaining*
    /// bytes; an injected degradation stretches it but does not fail it).
    /// On failure, returns the failure and the time charged before it —
    /// partial progress is kept, so the next attempt only re-sends the
    /// delta.
    pub fn attempt(
        &mut self,
        path: &Path,
        plan: &mut FaultPlan,
        op: &str,
    ) -> Result<SimDuration, (TransferFailure, SimDuration)> {
        let remaining = (1.0 - self.completed).max(0.0);
        let overhead = overhead_time(path, &self.spec);
        let remaining_bytes = self.spec.bytes.scale_ceil(remaining);
        let ser = serialisation_time(path, remaining_bytes, self.spec.efficiency);
        match plan.draw(FaultSite::Net, op) {
            Some(FaultKind::LinkFlap {
                at_fraction,
                downtime_s,
            }) => {
                self.completed += remaining * at_fraction;
                let downtime = SimDuration::from_secs(downtime_s);
                let charged = overhead + ser * at_fraction + downtime;
                Err((TransferFailure::LinkFlap { downtime }, charged))
            }
            Some(FaultKind::TransferStall { at_fraction, stall_s }) => {
                self.completed += remaining * at_fraction;
                let stalled_for = SimDuration::from_secs(stall_s);
                let charged = overhead + ser * at_fraction + stalled_for;
                Err((TransferFailure::Stall { stalled_for }, charged))
            }
            Some(FaultKind::LinkDegraded { bandwidth_factor }) => {
                // Slower, not fatal: the remaining bytes crawl across at a
                // fraction of the nominal bandwidth.
                self.completed = 1.0;
                let factor = bandwidth_factor.clamp(0.05, 1.0);
                Ok(overhead + ser / factor)
            }
            // Non-net kinds are never drawn for FaultSite::Net; treat any
            // future addition as a clean pass rather than a crash.
            Some(_) | None => {
                self.completed = 1.0;
                Ok(overhead + ser)
            }
        }
    }

    /// [`ResumableTransfer::attempt`] with telemetry: bumps the
    /// `net.attempts` / `net.bytes_delivered` / `net.retransmit_attempts`
    /// counters, records any freshly injected faults as `fault` events,
    /// and emits a `transfer-failed` event when the attempt dies. Timing
    /// and outcome are identical to the unobserved call.
    pub fn attempt_observed(
        &mut self,
        path: &Path,
        plan: &mut FaultPlan,
        op: &str,
        obs: &mut Obs,
    ) -> Result<SimDuration, (TransferFailure, SimDuration)> {
        let faults_before = plan.injected().len();
        let frac_before = self.completed;
        let result = self.attempt(path, plan, op);
        obs.counter_add("net.attempts", 1);
        if frac_before > 0.0 {
            // A resume re-pays the handshake for bytes already counted once.
            obs.counter_add("net.retransmit_attempts", 1);
        }
        let delivered = self
            .spec
            .bytes
            .scale_ceil((self.completed - frac_before).max(0.0));
        obs.counter_add("net.bytes_delivered", delivered.get());
        obs.record_injected_faults(&plan.injected()[faults_before..]);
        if let Err((failure, charged)) = &result {
            obs.event(
                "transfer-failed",
                vec![
                    ("op".to_string(), AttrValue::Str(op.to_string())),
                    ("failure".to_string(), AttrValue::Str(failure.to_string())),
                    ("charged_s".to_string(), AttrValue::F64(charged.as_secs())),
                ],
            );
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::transfer_time;
    use autolearn_util::fault::FaultConfig;
    use autolearn_util::units::Bytes;

    fn wifi() -> Path {
        Path::car_to_cloud()
    }

    #[test]
    fn fault_free_attempt_matches_transfer_time() {
        let spec = TransferSpec::rsync(Bytes::new(30_000_000));
        let mut t = ResumableTransfer::new(spec);
        let got = t.attempt(&wifi(), &mut FaultPlan::none(), "up").unwrap();
        assert_eq!(got, transfer_time(&wifi(), &spec));
        assert!(t.is_complete());
    }

    #[test]
    fn failed_attempt_keeps_partial_progress() {
        // Find a seed whose first net draw is a failing fault.
        for seed in 0..64 {
            let mut plan = FaultPlan::from_seed(seed, FaultConfig::chaos(1.0));
            let mut t = ResumableTransfer::new(TransferSpec::rsync(Bytes::new(30_000_000)));
            if let Err((failure, charged)) = t.attempt(&wifi(), &mut plan, "up") {
                assert!(charged.as_secs() > 0.0, "{failure}: charged {charged}");
                assert!(t.completed_fraction() > 0.0 && t.completed_fraction() < 1.0);
                // The retry only re-sends the delta: strictly cheaper than a
                // cold full transfer would be, once the handshake is netted
                // out of both.
                let retry = t
                    .attempt(&wifi(), &mut FaultPlan::none(), "up")
                    .expect("calm retry succeeds");
                let full = transfer_time(&wifi(), &TransferSpec::rsync(Bytes::new(30_000_000)));
                assert!(retry.as_secs() < full.as_secs(), "{retry} !< {full}");
                assert!(t.is_complete());
                return;
            }
        }
        panic!("no failing net fault found in 64 seeds");
    }

    #[test]
    fn degraded_attempt_succeeds_but_slower() {
        for seed in 0..64 {
            let mut plan = FaultPlan::from_seed(seed, FaultConfig::chaos(1.0));
            let mut probe = FaultPlan::from_seed(seed, FaultConfig::chaos(1.0));
            let drawn = probe.draw(FaultSite::Net, "up");
            if let Some(FaultKind::LinkDegraded { .. }) = drawn {
                let spec = TransferSpec::rsync(Bytes::new(30_000_000));
                let mut t = ResumableTransfer::new(spec);
                let got = t.attempt(&wifi(), &mut plan, "up").unwrap();
                assert!(got.as_secs() > transfer_time(&wifi(), &spec).as_secs());
                assert!(t.is_complete());
                return;
            }
        }
        panic!("no degradation fault found in 64 seeds");
    }

    #[test]
    fn observed_attempt_matches_unobserved_and_counts_faults() {
        for seed in 0..64 {
            let mut plain = FaultPlan::from_seed(seed, FaultConfig::chaos(1.0));
            let mut obs_plan = FaultPlan::from_seed(seed, FaultConfig::chaos(1.0));
            let spec = TransferSpec::rsync(Bytes::new(30_000_000));
            let mut a = ResumableTransfer::new(spec);
            let mut b = ResumableTransfer::new(spec);
            let mut obs = autolearn_obs::Obs::new();
            let plain_out = a.attempt(&wifi(), &mut plain, "up");
            let observed_out = b.attempt_observed(&wifi(), &mut obs_plan, "up", &mut obs);
            assert_eq!(plain_out, observed_out, "telemetry must not change timing");
            assert_eq!(obs.metrics().counter("net.attempts"), 1);
            if observed_out.is_err() {
                assert_eq!(obs.metrics().counter("net.faults"), 1);
                assert_eq!(obs.trace().events_named("fault").count(), 1);
                assert_eq!(obs.trace().events_named("transfer-failed").count(), 1);
                // Partial progress was still delivered and counted.
                assert!(obs.metrics().counter("net.bytes_delivered") > 0);
                return;
            }
        }
        panic!("no failing net fault found in 64 seeds");
    }

    #[test]
    fn attempts_are_deterministic_per_seed() {
        let run = |seed| {
            let mut plan = FaultPlan::from_seed(seed, FaultConfig::chaos(0.8));
            let mut t = ResumableTransfer::new(TransferSpec::rsync(Bytes::new(10_000_000)));
            let mut timeline = Vec::new();
            // no-unbounded-retry: bounded by the explicit attempt cap below.
            for _attempt in 0..8 {
                match t.attempt(&wifi(), &mut plan, "up") {
                    Ok(d) => {
                        timeline.push(d.as_secs());
                        break;
                    }
                    Err((_, d)) => timeline.push(d.as_secs()),
                }
            }
            (timeline, t.completed_fraction())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
