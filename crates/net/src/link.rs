//! Links and paths.

use autolearn_util::rng::derive_rng;
use autolearn_util::units::BytesPerSec;
use autolearn_util::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One network hop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    pub name: String,
    /// One-way propagation + queueing latency, s.
    pub latency_s: f64,
    /// Usable bandwidth, bytes/s.
    pub bandwidth_bps: f64,
    /// Latency jitter std-dev, s (one-way).
    pub jitter_s: f64,
    /// Packet-loss probability per message (retransmit adds an RTT).
    pub loss: f64,
}

/// The links the paper's deployment actually crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkPreset {
    /// Car's Raspberry Pi over campus 2.4 GHz WiFi.
    CarWifi,
    /// Campus network to the Chameleon site (CHI@UC / CHI@TACC over I2).
    CampusToChameleon,
    /// Inside the Chameleon datacenter fabric.
    Datacenter,
    /// A FABRIC-style managed-latency link (§3.2: "cloud experiments with
    /// managed latency"). Latency is configurable; this preset's default
    /// is 10 ms each way.
    FabricManaged,
    /// Localhost/on-board (edge inference).
    Loopback,
}

impl LinkPreset {
    pub fn link(self) -> Link {
        match self {
            LinkPreset::CarWifi => Link {
                name: "car-wifi".into(),
                latency_s: 0.004,
                bandwidth_bps: 3.0e6, // ~24 Mbit/s usable
                jitter_s: 0.002,
                loss: 0.01,
            },
            LinkPreset::CampusToChameleon => Link {
                name: "campus-chameleon".into(),
                latency_s: 0.015,
                bandwidth_bps: 60.0e6, // ~500 Mbit/s
                jitter_s: 0.003,
                loss: 0.001,
            },
            LinkPreset::Datacenter => Link {
                name: "datacenter".into(),
                latency_s: 0.0003,
                bandwidth_bps: 1.2e9, // ~10 Gbit/s
                jitter_s: 0.00005,
                loss: 0.0,
            },
            LinkPreset::FabricManaged => Link {
                name: "fabric-managed".into(),
                latency_s: 0.010,
                bandwidth_bps: 1.2e9,
                jitter_s: 0.0002, // managed = low jitter
                loss: 0.0,
            },
            LinkPreset::Loopback => Link {
                name: "loopback".into(),
                latency_s: 0.00005,
                bandwidth_bps: 6.0e9,
                jitter_s: 0.0,
                loss: 0.0,
            },
        }
    }
}

impl Link {
    /// A FABRIC managed-latency link pinned to a specific one-way latency.
    pub fn fabric_with_latency(latency_s: f64) -> Link {
        Link {
            latency_s,
            ..LinkPreset::FabricManaged.link()
        }
    }
}

/// A multi-hop path: latencies/jitter add, bandwidth is the bottleneck,
/// loss composes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Path {
    pub hops: Vec<Link>,
}

impl Path {
    pub fn new(hops: Vec<Link>) -> Path {
        assert!(!hops.is_empty(), "path needs at least one hop");
        Path { hops }
    }

    pub fn of_presets(presets: &[LinkPreset]) -> Path {
        Path::new(presets.iter().map(|p| p.link()).collect())
    }

    /// The edge→cloud path the paper's car uses: WiFi then campus uplink.
    pub fn car_to_cloud() -> Path {
        Path::of_presets(&[LinkPreset::CarWifi, LinkPreset::CampusToChameleon])
    }

    pub fn one_way_latency(&self) -> f64 {
        self.hops.iter().map(|h| h.latency_s).sum()
    }

    /// The path's usable rate: the slowest hop's bandwidth, unit-typed so
    /// callers divide payloads by it instead of open-coding `f64` ratios.
    pub fn bottleneck_bandwidth(&self) -> BytesPerSec {
        self.hops
            .iter()
            .map(|h| BytesPerSec::new(h.bandwidth_bps))
            .fold(BytesPerSec::new(f64::INFINITY), BytesPerSec::min)
    }

    pub fn jitter(&self) -> f64 {
        // Independent jitters: variances add.
        self.hops
            .iter()
            .map(|h| h.jitter_s * h.jitter_s)
            .sum::<f64>()
            .sqrt()
    }

    pub fn loss(&self) -> f64 {
        1.0 - self.hops.iter().map(|h| 1.0 - h.loss).product::<f64>()
    }

    /// Deterministic RTT sampler (seeded); loss events retransmit and add
    /// a full extra round trip.
    pub fn rtt_sampler(&self, seed: u64) -> RttSampler {
        RttSampler {
            base_rtt: 2.0 * self.one_way_latency(),
            jitter: 2.0f64.sqrt() * self.jitter(),
            loss: self.loss(),
            rng: derive_rng(seed, "rtt"),
        }
    }
}

/// Stream of RTT samples.
pub struct RttSampler {
    base_rtt: f64,
    jitter: f64,
    loss: f64,
    rng: StdRng,
}

impl RttSampler {
    /// TCP-style retransmit cap: after this many losses the message is
    /// abandoned and retried at application level — modelled as one more
    /// full timeout. Also guards against `loss == 1.0` looping forever.
    const MAX_RETX: u32 = 8;

    pub fn sample(&mut self) -> SimDuration {
        let mut rtt = self.base_rtt;
        if self.jitter > 0.0 {
            // Half-normal-ish positive jitter: queueing only adds delay.
            let j: f64 = self.rng.gen_range(0.0..1.0) + self.rng.gen_range(0.0..1.0);
            rtt += j * self.jitter;
        }
        // Retransmits, capped.
        let mut retx = 0;
        while self.loss > 0.0 && retx < Self::MAX_RETX && self.rng.gen::<f64>() < self.loss {
            rtt += self.base_rtt;
            retx += 1;
        }
        SimDuration::from_secs(rtt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let wifi = LinkPreset::CarWifi.link();
        let dc = LinkPreset::Datacenter.link();
        let lo = LinkPreset::Loopback.link();
        assert!(wifi.latency_s > dc.latency_s);
        assert!(dc.latency_s > lo.latency_s);
        assert!(wifi.bandwidth_bps < dc.bandwidth_bps);
    }

    #[test]
    fn path_composition() {
        let p = Path::car_to_cloud();
        assert!((p.one_way_latency() - 0.019).abs() < 1e-9);
        assert_eq!(p.bottleneck_bandwidth(), BytesPerSec::new(3.0e6));
        assert!(p.loss() > 0.01 && p.loss() < 0.012);
        assert!(p.jitter() > 0.002 && p.jitter() < 0.005);
    }

    #[test]
    fn fabric_latency_is_configurable() {
        let l = Link::fabric_with_latency(0.025);
        assert_eq!(l.latency_s, 0.025);
        assert_eq!(l.jitter_s, LinkPreset::FabricManaged.link().jitter_s);
    }

    #[test]
    fn rtt_sampler_centered_on_base() {
        let p = Path::of_presets(&[LinkPreset::FabricManaged]);
        let mut s = p.rtt_sampler(1);
        let base = 2.0 * p.one_way_latency();
        for _ in 0..100 {
            let rtt = s.sample().as_secs();
            assert!(rtt >= base - 1e-12, "rtt {rtt} below base {base}");
            assert!(rtt < base + 0.01, "rtt {rtt} wildly above base");
        }
    }

    #[test]
    fn rtt_sampler_deterministic() {
        let p = Path::car_to_cloud();
        let mut a = p.rtt_sampler(9);
        let mut b = p.rtt_sampler(9);
        for _ in 0..32 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn lossy_path_sometimes_retransmits() {
        let p = Path::new(vec![Link {
            name: "lossy".into(),
            latency_s: 0.01,
            bandwidth_bps: 1e6,
            jitter_s: 0.0,
            loss: 0.3,
        }]);
        let mut s = p.rtt_sampler(4);
        let base = 0.02;
        let with_retx = (0..200)
            .filter(|_| s.sample().as_secs() > base + 1e-9)
            .count();
        assert!(with_retx > 20, "expected retransmits, saw {with_retx}");
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_path_rejected() {
        let _ = Path::new(vec![]);
    }

    #[test]
    fn total_loss_terminates_with_bounded_rtt() {
        // loss = 1.0 must not loop forever: capped at MAX_RETX timeouts.
        let p = Path::new(vec![Link {
            name: "dead".into(),
            latency_s: 0.01,
            bandwidth_bps: 1e6,
            jitter_s: 0.0,
            loss: 1.0,
        }]);
        let mut s = p.rtt_sampler(1);
        let rtt = s.sample().as_secs();
        assert!((rtt - 0.02 * 9.0).abs() < 1e-9, "rtt {rtt}");
    }
}
