//! Flow-level network simulation for the edge-to-cloud continuum.
//!
//! The paper's pipeline moves data constantly: tubs rsync from the
//! Raspberry Pi to a Chameleon GPU node, trained models download to the
//! car, and (in the inference-placement extension) every camera frame may
//! cross the network for remote inference. This crate models those flows:
//!
//! * [`Link`] — latency / bandwidth / jitter / loss of one hop, with
//!   presets for the links the paper's deployment uses (campus WiFi from
//!   the car, the Chameleon datacenter fabric, and a FABRIC-style
//!   managed-latency link, §3.2),
//! * [`Path`] — hop composition,
//! * transfer-time modelling for bulk data (rsync/scp semantics with
//!   handshake cost) and for small request/response messages (remote
//!   inference RPCs),
//! * RTT sampling with deterministic jitter for closed-loop experiments,
//! * [`chaos`] — fault-aware resumable transfers that consult a seeded
//!   [`FaultPlan`](autolearn_util::fault::FaultPlan) and resume from the
//!   rsync delta after a mid-transfer failure.

pub mod chaos;
pub mod link;
pub mod transfer;

pub use chaos::{ResumableTransfer, TransferFailure};
pub use link::{Link, LinkPreset, Path};
pub use transfer::{rpc_round_trip, transfer_time, TransferSpec, MAX_EFFECTIVE_LOSS};
