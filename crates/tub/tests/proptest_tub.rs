//! Property tests: tub round-trips and cleaning invariants.

use autolearn_tub::clean::CleanReason;
use autolearn_tub::{CleanConfig, Record, Tub, TubCleaner, TubStats};
use autolearn_util::Image;
use proptest::prelude::*;

fn record(id: u64, steering: f32, throttle: f32, crashed: bool, off: bool) -> Record {
    let mut img = Image::new(8, 6, 1);
    img.data.fill(128);
    let mut r = Record::new(id, steering, throttle, id * 50, img);
    r.crashed = crashed;
    r.off_track = off;
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever goes into a tub comes back out, in order, with images.
    #[test]
    fn tub_roundtrip(controls in prop::collection::vec((-1.0f32..1.0, 0.0f32..1.0), 1..40)) {
        let dir = std::env::temp_dir().join(format!(
            "autolearn-proptest-{}-{}",
            std::process::id(),
            rand::random::<u64>()
        ));
        {
            let mut tub = Tub::create(&dir).unwrap();
            for (i, &(s, t)) in controls.iter().enumerate() {
                tub.write_record(record(i as u64, s, t, false, false)).unwrap();
            }
            let live = tub.read_live().unwrap();
            prop_assert_eq!(live.len(), controls.len());
            for (r, &(s, t)) in live.iter().zip(&controls) {
                prop_assert!((r.steering - s).abs() < 1e-6);
                prop_assert!((r.throttle - t).abs() < 1e-6);
                prop_assert!(r.image.is_some());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Cleaning flags every crashed/off-track record, never flags a margin
    /// wider than configured, and analysing twice gives the same answer.
    #[test]
    fn cleaning_sound_and_deterministic(
        incidents in prop::collection::vec(0usize..60, 0..6),
        margin_before in 0usize..5,
        margin_after in 0usize..5,
    ) {
        let n = 60;
        let mut records: Vec<Record> =
            (0..n).map(|i| record(i as u64, 0.0, 0.5, false, false)).collect();
        for &i in &incidents {
            records[i].crashed = true;
        }
        let cleaner = TubCleaner::new(CleanConfig {
            margin_before,
            margin_after,
            ..Default::default()
        });
        let a = cleaner.analyse(&records);
        let b = cleaner.analyse(&records);
        prop_assert_eq!(a.flagged.clone(), b.flagged.clone());

        // Soundness: every crash flagged as Crash.
        for &i in &incidents {
            prop_assert!(
                a.flagged.iter().any(|&(id, r)| id == i as u64 && r == CleanReason::Crash)
            );
        }
        // Bound: flagged count ≤ incidents * (1 + margins), and no flags
        // outside the union of margins.
        let max_flags = incidents.len() * (1 + margin_before + margin_after);
        prop_assert!(a.count() <= max_flags.min(n));
        for &(id, _) in &a.flagged {
            let near = incidents.iter().any(|&i| {
                let lo = i.saturating_sub(margin_before) as u64;
                let hi = (i + margin_after) as u64;
                (lo..=hi).contains(&id)
            });
            prop_assert!(near, "record {id} flagged without a nearby incident");
        }
    }

    /// Stats histogram always partitions the record count, and incident
    /// counters match the flags.
    #[test]
    fn stats_partition(controls in prop::collection::vec(-1.0f32..=1.0, 1..100), bins in 1usize..30) {
        let records: Vec<Record> = controls
            .iter()
            .enumerate()
            .map(|(i, &s)| record(i as u64, s, 0.5, i % 7 == 0, i % 5 == 0))
            .collect();
        let stats = TubStats::compute(&records, bins);
        prop_assert_eq!(stats.steering_hist.iter().sum::<usize>(), records.len());
        prop_assert_eq!(stats.crash_count, records.iter().filter(|r| r.crashed).count());
        prop_assert_eq!(stats.off_track_count, records.iter().filter(|r| r.off_track).count());
        prop_assert!(stats.steering_mean.abs() <= 1.0 + 1e-9);
    }
}
