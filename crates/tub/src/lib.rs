//! The DonkeyCar "tub" dataset format and cleaning tools.
//!
//! §3.3 of the paper describes the format exactly: *"records that consist of
//! .catalog files, images directory, and manifest files. .Catalog files
//! consist of steering and throttle values that were recorded while driving.
//! Each of these corresponds to an image in the images directory based on
//! their id number. Catalog_manifest files store information about each
//! catalog file and the manifest json file is where certain records are
//! marked for deletion."*
//!
//! This crate reproduces that layout on disk:
//!
//! ```text
//! <tub>/
//!   manifest.json            # tub metadata + deleted record ids
//!   catalog_manifest.json    # one entry per catalog file
//!   data_0.catalog           # JSON-lines records (steering, throttle, ...)
//!   data_1.catalog
//!   images/
//!     0.img 1.img ...        # raw frames (w,h,c header + bytes)
//! ```
//!
//! plus [`clean`] — the reproduction's `tubclean` equivalent (the paper's
//! manual video-review step becomes heuristics that flag crash/off-track
//! segments recorded by the collector), and [`stats`] for the dataset
//! summaries the teaching module asks students to inspect.

/// Heuristic tubclean pass (crash/off-track segment flagging).
pub mod clean;
/// One drive-loop sample: controls, timestamp, camera frame.
pub mod record;
/// Dataset summaries over a tub's records.
pub mod stats;
/// The on-disk tub format: manifest, catalogs, images.
pub mod tub;

pub use clean::{CleanConfig, CleanReport, TubCleaner};
pub use record::{DriveMode, Record};
pub use stats::TubStats;
pub use tub::{Tub, TubError};

/// Records per catalog file (DonkeyCar rotates at 1000).
pub const RECORDS_PER_CATALOG: usize = 1000;
