//! `tubclean`: finding and marking bad records.
//!
//! The paper (§3.3, "Additional data collection"): *"Learners will likely
//! generate some bad data consisting of mistakes (i.e., crashes or images
//! that are off-side) while driving; this data need to be deleted for the
//! training set to represent a valid scenario."* DonkeyCar's `tubclean`
//! plays the video and a human selects ranges to delete. The reproduction's
//! collector (the simulator) records ground-truth `crashed`/`off_track`
//! flags, so cleaning is automated here: flag those records plus a
//! surrounding margin (a human deletes the *approach* to a crash too), and
//! optionally frames whose image statistics look wrong (lens blackouts).

use crate::record::Record;
use serde::{Deserialize, Serialize};

/// Cleaning thresholds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CleanConfig {
    /// Also mark this many records *before* each crash/off-track event
    /// (the bad approach that caused it).
    pub margin_before: usize,
    /// ... and this many after (recovery wobble).
    pub margin_after: usize,
    /// Flag frames with mean intensity below this (dead camera).
    pub min_mean_intensity: f64,
    /// Flag frames with mean intensity above this (washed out).
    pub max_mean_intensity: f64,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            margin_before: 5,
            margin_after: 3,
            min_mean_intensity: 2.0,
            max_mean_intensity: 253.0,
        }
    }
}

/// Why a record was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CleanReason {
    Crash,
    OffTrack,
    NearIncident,
    BadImage,
}

/// Outcome of a cleaning pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CleanReport {
    /// (record id, reason) for every flagged record, in id order.
    pub flagged: Vec<(u64, CleanReason)>,
}

impl CleanReport {
    /// Ids of every flagged record, in flag order.
    pub fn flagged_ids(&self) -> Vec<u64> {
        self.flagged.iter().map(|(id, _)| *id).collect()
    }

    /// Total flagged records.
    pub fn count(&self) -> usize {
        self.flagged.len()
    }

    /// Flagged records carrying `reason`.
    pub fn count_reason(&self, reason: CleanReason) -> usize {
        self.flagged.iter().filter(|(_, r)| *r == reason).count()
    }
}

/// The cleaning pass itself.
pub struct TubCleaner {
    pub config: CleanConfig,
}

impl TubCleaner {
    /// A cleaner with the given thresholds.
    pub fn new(config: CleanConfig) -> TubCleaner {
        TubCleaner { config }
    }

    /// Analyse an ordered record slice and report what to delete.
    /// Records flagged directly keep their primary reason; margin records
    /// get [`CleanReason::NearIncident`].
    pub fn analyse(&self, records: &[Record]) -> CleanReport {
        let n = records.len();
        let mut reasons: Vec<Option<CleanReason>> = vec![None; n];

        // Primary flags.
        for (i, r) in records.iter().enumerate() {
            if r.crashed {
                reasons[i] = Some(CleanReason::Crash);
            } else if r.off_track {
                reasons[i] = Some(CleanReason::OffTrack);
            } else if let Some(img) = &r.image {
                let m = img.mean_intensity();
                if m < self.config.min_mean_intensity || m > self.config.max_mean_intensity {
                    reasons[i] = Some(CleanReason::BadImage);
                }
            }
        }

        // Margins around crash/off-track incidents.
        let mut near = vec![false; n];
        for (i, reason) in reasons.iter().enumerate() {
            if matches!(reason, Some(CleanReason::Crash) | Some(CleanReason::OffTrack)) {
                let lo = i.saturating_sub(self.config.margin_before);
                let hi = (i + self.config.margin_after + 1).min(n);
                for flag in near.iter_mut().take(hi).skip(lo) {
                    *flag = true;
                }
            }
        }
        for i in 0..n {
            if near[i] && reasons[i].is_none() {
                reasons[i] = Some(CleanReason::NearIncident);
            }
        }

        CleanReport {
            flagged: records
                .iter()
                .zip(&reasons)
                .filter_map(|(r, reason)| reason.map(|rr| (r.id, rr)))
                .collect(),
        }
    }

    /// Analyse and mark in one step; returns the report.
    pub fn clean_tub(&self, tub: &mut crate::tub::Tub) -> Result<CleanReport, crate::TubError> {
        let mut records = tub.read_all()?;
        for r in &mut records {
            // Image stats need pixels; tolerate missing files (id reuse
            // after manual edits) by skipping the image heuristic.
            r.image = tub.read_image(r.id).ok();
        }
        let report = self.analyse(&records);
        tub.mark_deleted(report.flagged_ids())?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_util::Image;

    fn rec(id: u64, crashed: bool, off: bool) -> Record {
        let mut r = Record::new(id, 0.0, 0.5, id * 50, Image::new(4, 4, 1));
        // Mid-grey image so the intensity heuristic stays quiet.
        if let Some(img) = &mut r.image {
            img.data.fill(128);
        }
        r.crashed = crashed;
        r.off_track = off;
        r
    }

    #[test]
    fn clean_data_stays_clean() {
        let records: Vec<Record> = (0..20).map(|i| rec(i, false, false)).collect();
        let report = TubCleaner::new(CleanConfig::default()).analyse(&records);
        assert_eq!(report.count(), 0);
    }

    #[test]
    fn crash_flags_with_margin() {
        let mut records: Vec<Record> = (0..20).map(|i| rec(i, false, false)).collect();
        records[10].crashed = true;
        let cleaner = TubCleaner::new(CleanConfig {
            margin_before: 2,
            margin_after: 1,
            ..Default::default()
        });
        let report = cleaner.analyse(&records);
        // 8, 9 (before), 10 (crash), 11 (after).
        assert_eq!(report.flagged_ids(), vec![8, 9, 10, 11]);
        assert_eq!(report.count_reason(CleanReason::Crash), 1);
        assert_eq!(report.count_reason(CleanReason::NearIncident), 3);
    }

    #[test]
    fn margin_clips_at_bounds() {
        let mut records: Vec<Record> = (0..5).map(|i| rec(i, false, false)).collect();
        records[0].crashed = true;
        records[4].off_track = true;
        let cleaner = TubCleaner::new(CleanConfig {
            margin_before: 3,
            margin_after: 3,
            ..Default::default()
        });
        let report = cleaner.analyse(&records);
        assert_eq!(report.count(), 5);
    }

    #[test]
    fn dead_camera_flagged() {
        let mut records: Vec<Record> = (0..3).map(|i| rec(i, false, false)).collect();
        if let Some(img) = &mut records[1].image {
            img.data.fill(0);
        }
        let report = TubCleaner::new(CleanConfig::default()).analyse(&records);
        assert_eq!(report.flagged, vec![(1, CleanReason::BadImage)]);
    }

    #[test]
    fn bad_image_gets_no_margin() {
        let mut records: Vec<Record> = (0..9).map(|i| rec(i, false, false)).collect();
        if let Some(img) = &mut records[4].image {
            img.data.fill(255);
        }
        let report = TubCleaner::new(CleanConfig::default()).analyse(&records);
        assert_eq!(report.count(), 1);
    }

    #[test]
    fn clean_tub_end_to_end() {
        use crate::tub::testutil::TempDir;
        use crate::tub::Tub;
        let tmp = TempDir::new("clean");
        let mut tub = Tub::create(tmp.0.join("tub")).unwrap();
        for i in 0..12u64 {
            let mut r = rec(0, false, false);
            r.crashed = i == 6;
            r.timestamp_ms = i * 50;
            tub.write_record(r).unwrap();
        }
        let cleaner = TubCleaner::new(CleanConfig {
            margin_before: 1,
            margin_after: 1,
            ..Default::default()
        });
        let report = cleaner.clean_tub(&mut tub).unwrap();
        assert_eq!(report.flagged_ids(), vec![5, 6, 7]);
        assert_eq!(tub.live_record_count(), 9);
    }
}
