//! Dataset statistics for the teaching module's "inspect your data" step.

use crate::record::Record;
use autolearn_util::RunningStats;
use serde::{Deserialize, Serialize};

/// Summary statistics of a record set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TubStats {
    pub records: usize,
    pub duration_s: f64,
    pub mean_hz: f64,
    pub steering_mean: f64,
    pub steering_std: f64,
    pub throttle_mean: f64,
    pub throttle_std: f64,
    /// Histogram of steering over [-1, 1] in `steering_hist.len()` bins.
    pub steering_hist: Vec<usize>,
    pub crash_count: usize,
    pub off_track_count: usize,
}

impl TubStats {
    /// Compute statistics over ordered records. `bins` controls the
    /// steering histogram resolution.
    pub fn compute(records: &[Record], bins: usize) -> TubStats {
        assert!(bins >= 1);
        let mut steer = RunningStats::new();
        let mut throttle = RunningStats::new();
        let mut hist = vec![0usize; bins];
        let mut crash = 0;
        let mut off = 0;
        for r in records {
            steer.push(f64::from(r.steering));
            throttle.push(f64::from(r.throttle));
            let b = (((f64::from(r.steering) + 1.0) / 2.0) * bins as f64) as usize;
            hist[b.min(bins - 1)] += 1;
            if r.crashed {
                crash += 1;
            }
            if r.off_track {
                off += 1;
            }
        }
        let duration_s = match (records.first(), records.last()) {
            (Some(a), Some(b)) => (b.timestamp_ms.saturating_sub(a.timestamp_ms)) as f64 / 1e3,
            _ => 0.0,
        };
        let mean_hz = if duration_s > 0.0 {
            (records.len().saturating_sub(1)) as f64 / duration_s
        } else {
            0.0
        };
        TubStats {
            records: records.len(),
            duration_s,
            mean_hz,
            steering_mean: steer.mean(),
            steering_std: steer.std_dev(),
            throttle_mean: throttle.mean(),
            throttle_std: throttle.std_dev(),
            steering_hist: hist,
            crash_count: crash,
            off_track_count: off,
        }
    }

    /// Fraction of steering samples in the central band |s| < 0.1 —
    /// a diagnostic for "too much straight driving" datasets.
    pub fn straight_fraction(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        let bins = self.steering_hist.len();
        // Central band: bins covering [-0.1, 0.1].
        let lo = ((0.9 / 2.0) * bins as f64) as usize;
        let hi = ((1.1 / 2.0) * bins as f64).ceil() as usize;
        let central: usize = self.steering_hist[lo..hi.min(bins)].iter().sum();
        central as f64 / self.records as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_util::Image;

    fn rec(id: u64, steering: f32, ts: u64) -> Record {
        Record::new(id, steering, 0.5, ts, Image::new(2, 2, 1))
    }

    #[test]
    fn basic_statistics() {
        let records: Vec<Record> = (0..11)
            .map(|i| rec(i, (i as f32 - 5.0) / 5.0, i * 50))
            .collect();
        let stats = TubStats::compute(&records, 10);
        assert_eq!(stats.records, 11);
        assert!((stats.duration_s - 0.5).abs() < 1e-9);
        assert!((stats.mean_hz - 20.0).abs() < 1e-9);
        assert!(stats.steering_mean.abs() < 1e-6);
        assert_eq!(stats.steering_hist.iter().sum::<usize>(), 11);
    }

    #[test]
    fn histogram_extremes_land_in_edge_bins() {
        let records = vec![rec(0, -1.0, 0), rec(1, 1.0, 50)];
        let stats = TubStats::compute(&records, 4);
        assert_eq!(stats.steering_hist[0], 1);
        assert_eq!(stats.steering_hist[3], 1);
    }

    #[test]
    fn straight_fraction_detects_boring_data() {
        let straight: Vec<Record> = (0..100).map(|i| rec(i, 0.0, i * 50)).collect();
        let varied: Vec<Record> = (0..100)
            .map(|i| rec(i, (i as f32 / 50.0) - 1.0, i * 50))
            .collect();
        let s1 = TubStats::compute(&straight, 20).straight_fraction();
        let s2 = TubStats::compute(&varied, 20).straight_fraction();
        assert!(s1 > 0.9, "straight {s1}");
        assert!(s2 < 0.3, "varied {s2}");
    }

    #[test]
    fn incident_counts() {
        let mut records: Vec<Record> = (0..5).map(|i| rec(i, 0.0, i * 50)).collect();
        records[1].crashed = true;
        records[3].off_track = true;
        records[4].off_track = true;
        let stats = TubStats::compute(&records, 5);
        assert_eq!(stats.crash_count, 1);
        assert_eq!(stats.off_track_count, 2);
    }

    #[test]
    fn empty_records() {
        let stats = TubStats::compute(&[], 5);
        assert_eq!(stats.records, 0);
        assert_eq!(stats.duration_s, 0.0);
        assert_eq!(stats.straight_fraction(), 0.0);
    }
}
