//! A single driving record.

use autolearn_util::Image;
use serde::{Deserialize, Serialize};

/// Who was driving when the record was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriveMode {
    /// Human driving (joystick or web controller).
    User,
    /// Autopilot (a trained model).
    Pilot,
}

/// One frame of driving data: what DonkeyCar stores per catalog line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Monotonic record id; `images/<id>.img` holds the frame.
    pub id: u64,
    /// Steering in [-1, 1] (DonkeyCar `user/angle`).
    pub steering: f32,
    /// Throttle in [0, 1] (DonkeyCar `user/throttle`).
    pub throttle: f32,
    /// Milliseconds since session start.
    pub timestamp_ms: u64,
    pub mode: DriveMode,
    /// Collector-provided quality flags (the simulator knows when the car
    /// was off-track or crashed; a human reviewer learns it from the video).
    pub off_track: bool,
    pub crashed: bool,
    /// The camera frame. Not serialised into the catalog line — it lives in
    /// the images directory, keyed by `id`.
    #[serde(skip)]
    pub image: Option<Image>,
}

impl Record {
    /// A record from its parts.
    pub fn new(id: u64, steering: f32, throttle: f32, timestamp_ms: u64, image: Image) -> Record {
        Record {
            id,
            steering: steering.clamp(-1.0, 1.0),
            throttle: throttle.clamp(0.0, 1.0),
            timestamp_ms,
            mode: DriveMode::User,
            off_track: false,
            crashed: false,
            image: Some(image),
        }
    }

    /// The catalog line for this record (image stored separately). Fails
    /// only if serde rejects the record, which a writer should surface as
    /// tub corruption rather than abort on.
    pub fn to_catalog_line(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parse a record back from its catalog JSON line.
    pub fn from_catalog_line(line: &str) -> Result<Record, serde_json::Error> {
        serde_json::from_str(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img() -> Image {
        Image::new(4, 3, 1)
    }

    #[test]
    fn clamps_controls() {
        let r = Record::new(0, -2.0, 1.5, 0, img());
        assert_eq!(r.steering, -1.0);
        assert_eq!(r.throttle, 1.0);
    }

    #[test]
    fn catalog_line_roundtrip_excludes_image() {
        let mut r = Record::new(7, 0.25, 0.5, 123, img());
        r.off_track = true;
        let line = r.to_catalog_line().unwrap();
        assert!(!line.contains("\"image\""));
        let back = Record::from_catalog_line(&line).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.steering, 0.25);
        assert!(back.off_track);
        assert!(back.image.is_none());
    }

    #[test]
    fn catalog_line_is_single_line_json() {
        let r = Record::new(1, 0.0, 0.3, 10, img());
        let line = r.to_catalog_line().unwrap();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
}
