//! On-disk tub storage.

use crate::record::Record;
use crate::RECORDS_PER_CATALOG;
use autolearn_util::Image;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Errors raised by tub I/O.
#[derive(Debug)]
pub enum TubError {
    Io(std::io::Error),
    Corrupt(String),
}

impl std::fmt::Display for TubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TubError::Io(e) => write!(f, "tub io error: {e}"),
            TubError::Corrupt(m) => write!(f, "corrupt tub: {m}"),
        }
    }
}

impl std::error::Error for TubError {}

impl From<std::io::Error> for TubError {
    fn from(e: std::io::Error) -> Self {
        TubError::Io(e)
    }
}

impl From<serde_json::Error> for TubError {
    fn from(e: serde_json::Error) -> Self {
        TubError::Corrupt(e.to_string())
    }
}

/// `manifest.json`: tub metadata and deletion marks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Manifest {
    /// Free-form session metadata (track name, driver, car config).
    pub metadata: std::collections::BTreeMap<String, String>,
    /// Ids marked for deletion (the paper: "certain records are marked for
    /// deletion" in manifest.json).
    pub deleted_ids: BTreeSet<u64>,
    pub next_id: u64,
}

/// One entry of `catalog_manifest.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatalogEntry {
    pub path: String,
    pub start_id: u64,
    pub record_count: usize,
}

/// A DonkeyCar-format dataset directory.
pub struct Tub {
    dir: PathBuf,
    manifest: Manifest,
    catalogs: Vec<CatalogEntry>,
    /// Open catalog writer state: records written to the current catalog.
    current_count: usize,
}

impl Tub {
    /// Create a new tub at `dir` (created if absent; must be empty of tub
    /// files).
    pub fn create(dir: impl AsRef<Path>) -> Result<Tub, TubError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(dir.join("images"))?;
        if dir.join("manifest.json").exists() {
            return Err(TubError::Corrupt(format!(
                "{} already contains a tub",
                dir.display()
            )));
        }
        let tub = Tub {
            dir,
            manifest: Manifest::default(),
            catalogs: Vec::new(),
            current_count: 0,
        };
        tub.flush_manifests()?;
        Ok(tub)
    }

    /// Open an existing tub.
    pub fn open(dir: impl AsRef<Path>) -> Result<Tub, TubError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest: Manifest =
            serde_json::from_str(&fs::read_to_string(dir.join("manifest.json"))?)?;
        let catalogs: Vec<CatalogEntry> =
            serde_json::from_str(&fs::read_to_string(dir.join("catalog_manifest.json"))?)?;
        let current_count = catalogs.last().map(|c| c.record_count).unwrap_or(0);
        Ok(Tub {
            dir,
            manifest,
            catalogs,
            current_count,
        })
    }

    /// The tub's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Mutable access to the manifest metadata map.
    pub fn metadata_mut(&mut self) -> &mut std::collections::BTreeMap<String, String> {
        &mut self.manifest.metadata
    }

    /// The manifest metadata map.
    pub fn metadata(&self) -> &std::collections::BTreeMap<String, String> {
        &self.manifest.metadata
    }

    /// Total records written (including deleted-marked ones).
    pub fn record_count(&self) -> usize {
        self.catalogs.iter().map(|c| c.record_count).sum()
    }

    /// Records not marked deleted.
    pub fn live_record_count(&self) -> usize {
        self.record_count() - self.manifest.deleted_ids.len()
    }

    /// Ids marked deleted in the manifest.
    pub fn deleted_ids(&self) -> &BTreeSet<u64> {
        &self.manifest.deleted_ids
    }

    /// Number of catalog files written so far.
    pub fn catalog_count(&self) -> usize {
        self.catalogs.len()
    }

    /// Append a record; assigns and returns its id. The image is written to
    /// `images/<id>.img`, the rest to the current catalog file.
    pub fn write_record(&mut self, mut record: Record) -> Result<u64, TubError> {
        let id = self.manifest.next_id;
        self.manifest.next_id += 1;
        record.id = id;

        let image = record
            .image
            .take()
            .ok_or_else(|| TubError::Corrupt("record has no image".into()))?;
        write_image(&self.dir.join("images").join(format!("{id}.img")), &image)?;

        // Rotate catalog if needed.
        if self.catalogs.is_empty() || self.current_count >= RECORDS_PER_CATALOG {
            let idx = self.catalogs.len();
            self.catalogs.push(CatalogEntry {
                path: format!("data_{idx}.catalog"),
                start_id: id,
                record_count: 0,
            });
            self.current_count = 0;
        }
        let entry = match self.catalogs.last_mut() {
            Some(entry) => entry,
            None => return Err(TubError::Corrupt("no catalog after rotation".into())),
        };
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(&entry.path))?;
        writeln!(f, "{}", record.to_catalog_line()?)?;
        entry.record_count += 1;
        self.current_count += 1;

        self.flush_manifests()?;
        Ok(id)
    }

    /// Read every record (catalog metadata only; no images) in id order,
    /// including deleted-marked records.
    pub fn read_all(&self) -> Result<Vec<Record>, TubError> {
        let mut out = Vec::with_capacity(self.record_count());
        for entry in &self.catalogs {
            let f = fs::File::open(self.dir.join(&entry.path))?;
            for line in BufReader::new(f).lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                out.push(Record::from_catalog_line(&line)?);
            }
        }
        Ok(out)
    }

    /// Read records that are not marked deleted, loading their images.
    pub fn read_live(&self) -> Result<Vec<Record>, TubError> {
        let mut records = self.read_all()?;
        records.retain(|r| !self.manifest.deleted_ids.contains(&r.id));
        for r in &mut records {
            r.image = Some(self.read_image(r.id)?);
        }
        Ok(records)
    }

    /// Load the frame for record `id`.
    pub fn read_image(&self, id: u64) -> Result<Image, TubError> {
        read_image(&self.dir.join("images").join(format!("{id}.img")))
    }

    /// Mark records for deletion (tubclean's output).
    pub fn mark_deleted(&mut self, ids: impl IntoIterator<Item = u64>) -> Result<(), TubError> {
        self.manifest.deleted_ids.extend(ids);
        self.flush_manifests()
    }

    /// Unmark records.
    pub fn restore(&mut self, ids: impl IntoIterator<Item = u64>) -> Result<(), TubError> {
        for id in ids {
            self.manifest.deleted_ids.remove(&id);
        }
        self.flush_manifests()
    }

    fn flush_manifests(&self) -> Result<(), TubError> {
        fs::write(
            self.dir.join("manifest.json"),
            serde_json::to_string_pretty(&self.manifest)?,
        )?;
        fs::write(
            self.dir.join("catalog_manifest.json"),
            serde_json::to_string_pretty(&self.catalogs)?,
        )?;
        Ok(())
    }
}

fn write_image(path: &Path, image: &Image) -> Result<(), TubError> {
    // Tiny header (w, h, c as little-endian u32) + raw bytes: enough
    // fidelity for the reproduction without a JPEG codec.
    let mut buf = Vec::with_capacity(12 + image.data.len());
    buf.extend_from_slice(&(image.width as u32).to_le_bytes());
    buf.extend_from_slice(&(image.height as u32).to_le_bytes());
    buf.extend_from_slice(&(image.channels as u32).to_le_bytes());
    buf.extend_from_slice(&image.data);
    fs::write(path, buf)?;
    Ok(())
}

fn read_image(path: &Path) -> Result<Image, TubError> {
    let buf = fs::read(path)?;
    if buf.len() < 12 {
        return Err(TubError::Corrupt(format!("{} truncated", path.display())));
    }
    let header_field = |i: usize| -> Result<usize, TubError> {
        let bytes = buf
            .get(i * 4..i * 4 + 4)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
            .ok_or_else(|| TubError::Corrupt(format!("{} header truncated", path.display())))?;
        Ok(u32::from_le_bytes(bytes) as usize)
    };
    let w = header_field(0)?;
    let h = header_field(1)?;
    let c = header_field(2)?;
    if buf.len() != 12 + w * h * c {
        return Err(TubError::Corrupt(format!(
            "{}: expected {} pixel bytes, found {}",
            path.display(),
            w * h * c,
            buf.len() - 12
        )));
    }
    Ok(Image {
        width: w,
        height: h,
        channels: c,
        data: buf[12..].to_vec(),
    })
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A unique scratch directory, removed on drop.
    pub struct TempDir(pub PathBuf);

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "autolearn-tub-test-{tag}-{}-{n}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::TempDir;
    use super::*;

    fn frame(seed: u8) -> Image {
        let mut img = Image::new(8, 6, 1);
        for (i, px) in img.data.iter_mut().enumerate() {
            *px = seed.wrapping_add(i as u8);
        }
        img
    }

    fn write_n(tub: &mut Tub, n: usize) {
        for i in 0..n {
            let r = Record::new(
                0,
                (i as f32 / n as f32) * 2.0 - 1.0,
                0.5,
                i as u64 * 50,
                frame(i as u8),
            );
            tub.write_record(r).unwrap();
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let tmp = TempDir::new("roundtrip");
        let mut tub = Tub::create(tmp.0.join("tub")).unwrap();
        write_n(&mut tub, 5);
        assert_eq!(tub.record_count(), 5);

        let records = tub.read_live().unwrap();
        assert_eq!(records.len(), 5);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            let img = r.image.as_ref().unwrap();
            assert_eq!(img.width, 8);
            assert_eq!(img.data, frame(i as u8).data);
        }
    }

    #[test]
    fn layout_matches_paper_description() {
        let tmp = TempDir::new("layout");
        let dir = tmp.0.join("tub");
        let mut tub = Tub::create(&dir).unwrap();
        write_n(&mut tub, 3);
        assert!(dir.join("manifest.json").exists());
        assert!(dir.join("catalog_manifest.json").exists());
        assert!(dir.join("data_0.catalog").exists());
        assert!(dir.join("images/0.img").exists());
        assert!(dir.join("images/2.img").exists());
    }

    #[test]
    fn catalog_rotation_at_limit() {
        let tmp = TempDir::new("rotate");
        let mut tub = Tub::create(tmp.0.join("tub")).unwrap();
        write_n(&mut tub, RECORDS_PER_CATALOG + 5);
        assert_eq!(tub.catalog_count(), 2);
        assert!(tub.dir().join("data_1.catalog").exists());
        let all = tub.read_all().unwrap();
        assert_eq!(all.len(), RECORDS_PER_CATALOG + 5);
        // Ids remain monotonic across the rotation.
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn deletion_marks_hide_records() {
        let tmp = TempDir::new("delete");
        let mut tub = Tub::create(tmp.0.join("tub")).unwrap();
        write_n(&mut tub, 10);
        tub.mark_deleted([2u64, 5, 7]).unwrap();
        assert_eq!(tub.live_record_count(), 7);
        let live = tub.read_live().unwrap();
        assert_eq!(live.len(), 7);
        assert!(live.iter().all(|r| ![2u64, 5, 7].contains(&r.id)));
        // read_all still sees everything (marks, not physical deletion).
        assert_eq!(tub.read_all().unwrap().len(), 10);

        tub.restore([5u64]).unwrap();
        assert_eq!(tub.live_record_count(), 8);
    }

    #[test]
    fn reopen_preserves_state() {
        let tmp = TempDir::new("reopen");
        let dir = tmp.0.join("tub");
        {
            let mut tub = Tub::create(&dir).unwrap();
            tub.metadata_mut()
                .insert("track".into(), "paper-oval".into());
            write_n(&mut tub, 4);
            tub.mark_deleted([1u64]).unwrap();
        }
        let mut tub = Tub::open(&dir).unwrap();
        assert_eq!(tub.record_count(), 4);
        assert_eq!(tub.live_record_count(), 3);
        assert_eq!(tub.metadata()["track"], "paper-oval");
        // Appending continues the id sequence.
        let id = tub
            .write_record(Record::new(0, 0.0, 0.5, 999, frame(9)))
            .unwrap();
        assert_eq!(id, 4);
    }

    #[test]
    fn create_refuses_existing_tub() {
        let tmp = TempDir::new("exists");
        let dir = tmp.0.join("tub");
        let _tub = Tub::create(&dir).unwrap();
        assert!(Tub::create(&dir).is_err());
    }

    #[test]
    fn corrupt_image_detected() {
        let tmp = TempDir::new("corrupt");
        let dir = tmp.0.join("tub");
        let mut tub = Tub::create(&dir).unwrap();
        write_n(&mut tub, 1);
        std::fs::write(dir.join("images/0.img"), [1, 2, 3]).unwrap();
        assert!(matches!(tub.read_image(0), Err(TubError::Corrupt(_))));
    }
}
