//! Span/event tracing core, keyed on simulated time.
//!
//! A [`Trace`] is a grow-only arena of [`Span`]s (work with extent on the
//! simulated timeline) and [`Event`]s (instants), both carrying typed
//! [`AttrValue`] attributes. Nothing in here reads the host clock — every
//! timestamp is a [`SimTime`] handed in by the caller, which is what makes
//! two same-seed runs produce byte-identical traces (the
//! `no-wallclock-in-sim` lint enforces the other half of that contract).
//!
//! Nesting is explicit: the arena keeps a stack of open spans, and a new
//! span or event parents onto whatever is on top. Closing happens in LIFO
//! order; closing a span that is not the innermost open one closes the
//! ones opened after it first (they cannot outlive their parent's extent
//! on a single simulated timeline).

use autolearn_util::SimTime;

/// Index of a span in its [`Trace`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub usize);

/// A typed attribute value. Numbers are kept in their native width so a
/// round trip through the trace (e.g. the `RunLog` view in
/// `autolearn-core`) is exact, not a string re-parse.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer attribute (epoch numbers, attempt counters).
    Int(i64),
    /// Unsigned integer attribute (byte counts, parameter counts).
    UInt(u64),
    /// Floating-point attribute (losses, durations in seconds).
    F64(f64),
    /// String attribute (stage names, fault descriptions).
    Str(String),
    /// Boolean attribute.
    Bool(bool),
}

impl AttrValue {
    /// The value as `f64`, when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(v) => Some(*v as f64),
            AttrValue::UInt(v) => Some(*v as f64),
            AttrValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `i64`, when it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            AttrValue::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }
}

/// A named `(key, value)` attribute list, in insertion order.
pub type Attrs = Vec<(String, AttrValue)>;

/// One span: named work with a start and (once closed) an end instant.
#[derive(Debug, Clone)]
pub struct Span {
    /// What the span covers (stage or operation name).
    pub name: String,
    /// The enclosing span, if any.
    pub parent: Option<SpanId>,
    /// When the work began, on the simulated timeline.
    pub start: SimTime,
    /// When the work ended; `None` while the span is still open.
    pub end: Option<SimTime>,
    /// Typed attributes, in the order they were attached.
    pub attrs: Attrs,
    /// Global sequence number (spans and events share one counter), used
    /// by the exporters to keep same-timestamp records in emission order.
    pub seq: u64,
}

/// One instant event.
#[derive(Debug, Clone)]
pub struct Event {
    /// What happened.
    pub name: String,
    /// The span it happened inside, if any.
    pub parent: Option<SpanId>,
    /// When it happened.
    pub at: SimTime,
    /// Typed attributes, in the order they were attached.
    pub attrs: Attrs,
    /// Global sequence number shared with spans.
    pub seq: u64,
}

/// Grow-only per-run trace arena.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<Span>,
    events: Vec<Event>,
    open: Vec<SpanId>,
    seq: u64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Open a span named `name` starting `at`, nested under the innermost
    /// open span.
    pub fn begin_span(&mut self, name: &str, at: SimTime) -> SpanId {
        let id = SpanId(self.spans.len());
        let seq = self.next_seq();
        self.spans.push(Span {
            name: name.to_string(),
            parent: self.open.last().copied(),
            start: at,
            end: None,
            attrs: Vec::new(),
            seq,
        });
        self.open.push(id);
        id
    }

    /// Close `id` at `at`. Any spans opened after `id` and still open are
    /// closed at the same instant first (children cannot outlive their
    /// parent on one timeline). Closing a span that is already closed is a
    /// no-op.
    pub fn end_span(&mut self, id: SpanId, at: SimTime) {
        if !self.open.contains(&id) {
            return;
        }
        while let Some(&top) = self.open.last() {
            self.open.pop();
            if let Some(span) = self.spans.get_mut(top.0) {
                if span.end.is_none() {
                    span.end = Some(at);
                }
            }
            if top == id {
                return;
            }
        }
    }

    /// Attach an attribute to `id`. Unknown ids are ignored (the arena
    /// never panics mid-run).
    pub fn span_attr(&mut self, id: SpanId, key: &str, value: AttrValue) {
        if let Some(span) = self.spans.get_mut(id.0) {
            span.attrs.push((key.to_string(), value));
        }
    }

    /// Record an instant event `at`, parented on the innermost open span.
    pub fn event(&mut self, name: &str, at: SimTime, attrs: Attrs) {
        let parent = self.open.last().copied();
        let seq = self.next_seq();
        self.events.push(Event {
            name: name.to_string(),
            parent,
            at,
            attrs,
            seq,
        });
    }

    /// All spans, in creation order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The innermost currently-open span.
    pub fn current_span(&self) -> Option<SpanId> {
        self.open.last().copied()
    }

    /// Spans named `name`, in creation order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Events named `name`, in emission order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Depth of `id` in the span tree (root spans are depth 0).
    pub fn depth(&self, id: SpanId) -> usize {
        let mut depth = 0;
        let mut cur = self.spans.get(id.0).and_then(|s| s.parent);
        while let Some(p) = cur {
            depth += 1;
            cur = self.spans.get(p.0).and_then(|s| s.parent);
        }
        depth
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

/// Attribute lookup by key (first match), shared by the trace views.
pub fn attr<'a>(attrs: &'a Attrs, key: &str) -> Option<&'a AttrValue> {
    attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn spans_nest_under_the_open_stack() {
        let mut trace = Trace::new();
        let root = trace.begin_span("pipeline", t(0.0));
        let child = trace.begin_span("collect", t(0.0));
        trace.event("sample", t(1.0), vec![]);
        trace.end_span(child, t(2.0));
        let sibling = trace.begin_span("train", t(2.0));
        trace.end_span(sibling, t(5.0));
        trace.end_span(root, t(5.0));

        assert_eq!(trace.spans().len(), 3);
        assert_eq!(trace.spans()[1].parent, Some(root));
        assert_eq!(trace.spans()[2].parent, Some(root));
        assert_eq!(trace.events()[0].parent, Some(child));
        assert_eq!(trace.depth(child), 1);
        assert_eq!(trace.depth(root), 0);
        assert_eq!(trace.spans()[1].end, Some(t(2.0)));
    }

    #[test]
    fn ending_a_parent_closes_open_children() {
        let mut trace = Trace::new();
        let root = trace.begin_span("outer", t(0.0));
        let _leaked = trace.begin_span("inner", t(1.0));
        trace.end_span(root, t(3.0));
        assert!(trace.spans().iter().all(|s| s.end == Some(t(3.0))));
        assert_eq!(trace.current_span(), None);
    }

    #[test]
    fn attrs_round_trip_exact() {
        let mut trace = Trace::new();
        let id = trace.begin_span("attempt", t(0.0));
        trace.span_attr(id, "charged_s", AttrValue::F64(0.1 + 0.2));
        trace.span_attr(id, "attempt", AttrValue::Int(3));
        trace.span_attr(id, "outcome", AttrValue::Str("ok".into()));
        trace.end_span(id, t(1.0));
        let span = &trace.spans()[0];
        assert_eq!(attr(&span.attrs, "charged_s").unwrap().as_f64(), Some(0.1 + 0.2));
        assert_eq!(attr(&span.attrs, "attempt").unwrap().as_int(), Some(3));
        assert_eq!(attr(&span.attrs, "outcome").unwrap().as_str(), Some("ok"));
        assert_eq!(attr(&span.attrs, "missing"), None);
    }

    #[test]
    fn named_iterators_filter() {
        let mut trace = Trace::new();
        let a = trace.begin_span("attempt", t(0.0));
        trace.end_span(a, t(1.0));
        let b = trace.begin_span("attempt", t(1.0));
        trace.end_span(b, t(2.0));
        trace.event("fault", t(0.5), vec![]);
        assert_eq!(trace.spans_named("attempt").count(), 2);
        assert_eq!(trace.events_named("fault").count(), 1);
        assert_eq!(trace.spans_named("nope").count(), 0);
    }
}
