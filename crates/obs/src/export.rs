//! Trace and metrics exporters.
//!
//! Two formats, both hand-rolled so the output is byte-identical across
//! same-seed replays (no dependency on a serializer's key ordering):
//!
//! * [`chrome_trace`] — the Chrome Trace Event JSON format (`ph: "X"`
//!   complete events for spans, `ph: "i"` instants for events), loadable
//!   directly in Perfetto / `chrome://tracing`. Simulated seconds become
//!   trace microseconds.
//! * [`summary`] — a compact JSON digest: span totals by name plus every
//!   registered metric, for experiment reports and CI assertions.

use crate::metrics::{Metric, MetricsRegistry};
use crate::trace::{AttrValue, Trace};

/// Escape `s` into a JSON string body (no surrounding quotes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number. Rust's `{:?}` is the shortest
/// round-trip representation, which is deterministic for identical bits;
/// non-finite values (not representable in JSON) become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn json_attr(value: &AttrValue) -> String {
    match value {
        AttrValue::Int(v) => v.to_string(),
        AttrValue::UInt(v) => v.to_string(),
        AttrValue::F64(v) => json_f64(*v),
        AttrValue::Str(s) => format!("\"{}\"", escape(s)),
        AttrValue::Bool(b) => b.to_string(),
    }
}

fn json_args(attrs: &[(String, AttrValue)]) -> String {
    let body: Vec<String> = attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), json_attr(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Simulated seconds → trace microseconds (the unit the Trace Event
/// format expects).
fn to_us(secs: f64) -> String {
    json_f64(secs * 1e6)
}

/// Export `trace` in the Chrome Trace Event format. Spans become `ph:"X"`
/// complete events (with their simulated duration), trace events become
/// `ph:"i"` thread-scoped instants; everything lives on one pid/tid since
/// the simulation is single-timeline. Open spans are exported with zero
/// duration. Load the result in Perfetto or `chrome://tracing` as-is.
pub fn chrome_trace(trace: &Trace) -> String {
    // Interleave spans and instants in their global emission order so the
    // file is stable and human-diffable; viewers sort by ts themselves.
    let mut records: Vec<(u64, String)> = Vec::new();
    for span in trace.spans() {
        let start = span.start.as_secs();
        let dur = span.end.map(|e| (e - span.start).as_secs()).unwrap_or(0.0);
        records.push((
            span.seq,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"args\":{}}}",
                escape(&span.name),
                to_us(start),
                to_us(dur),
                json_args(&span.attrs)
            ),
        ));
    }
    for event in trace.events() {
        records.push((
            event.seq,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":1,\"tid\":1,\"args\":{}}}",
                escape(&event.name),
                to_us(event.at.as_secs()),
                json_args(&event.attrs)
            ),
        ));
    }
    records.sort_by_key(|(seq, _)| *seq);
    let body: Vec<String> = records.into_iter().map(|(_, r)| r).collect();
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        body.join(",\n")
    )
}

fn json_metric(metric: &Metric) -> String {
    match metric {
        Metric::Counter(c) => format!("{{\"type\":\"counter\",\"value\":{}}}", c.value),
        Metric::Gauge(g) => {
            format!("{{\"type\":\"gauge\",\"value\":{}}}", json_f64(g.value))
        }
        Metric::Histogram(h) => {
            let bounds: Vec<String> = h.bounds.iter().map(|b| json_f64(*b)).collect();
            let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
            format!(
                "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"bounds\":[{}],\"counts\":[{}]}}",
                h.count,
                json_f64(h.sum),
                json_f64(h.mean()),
                json_f64(h.percentile(50.0)),
                json_f64(h.percentile(95.0)),
                bounds.join(","),
                counts.join(",")
            )
        }
    }
}

/// Export a compact JSON digest of `trace` + `metrics`: per-name span
/// totals (count + summed simulated seconds, in first-appearance order)
/// and every registered metric in insertion order.
pub fn summary(trace: &Trace, metrics: &MetricsRegistry) -> String {
    // Span totals by name, first-appearance order.
    let mut names: Vec<&str> = Vec::new();
    let mut totals: Vec<(u64, f64)> = Vec::new();
    for span in trace.spans() {
        let dur = span.end.map(|e| (e - span.start).as_secs()).unwrap_or(0.0);
        match names.iter().position(|n| *n == span.name) {
            Some(i) => {
                totals[i].0 += 1;
                totals[i].1 += dur;
            }
            None => {
                names.push(&span.name);
                totals.push((1, dur));
            }
        }
    }
    let span_rows: Vec<String> = names
        .iter()
        .zip(&totals)
        .map(|(name, (count, secs))| {
            format!(
                "    {{\"name\":\"{}\",\"count\":{},\"total_s\":{}}}",
                escape(name),
                count,
                json_f64(*secs)
            )
        })
        .collect();
    let metric_rows: Vec<String> = metrics
        .iter()
        .map(|(name, metric)| format!("    \"{}\": {}", escape(name), json_metric(metric)))
        .collect();
    format!(
        "{{\n  \"spans\": {},\n  \"events\": {},\n  \"span_totals\": [\n{}\n  ],\n  \"metrics\": {{\n{}\n  }}\n}}\n",
        trace.spans().len(),
        trace.events().len(),
        span_rows.join(",\n"),
        metric_rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use autolearn_util::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample_trace() -> Trace {
        let mut trace = Trace::new();
        let root = trace.begin_span("pipeline", t(0.0));
        let stage = trace.begin_span("collect", t(0.0));
        trace.event(
            "fault",
            t(1.5),
            vec![("kind".to_string(), AttrValue::Str("link \"flap\"".to_string()))],
        );
        trace.end_span(stage, t(2.0));
        trace.end_span(root, t(2.0));
        trace
    }

    #[test]
    fn chrome_trace_has_the_expected_shape() {
        let json = chrome_trace(&sample_trace());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"pipeline\""));
        // 2 s span → 2e6 us.
        assert!(json.contains("\"dur\":2000000.0"));
        // Quotes inside attribute strings are escaped.
        assert!(json.contains("link \\\"flap\\\""));
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace(&sample_trace());
        let b = chrome_trace(&sample_trace());
        assert_eq!(a, b);
    }

    #[test]
    fn summary_totals_spans_by_name() {
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("pipeline.retries", 2);
        metrics.gauge_set("nn.scratch_peak_bytes", 1024.0);
        metrics.observe("stage_seconds", 2.0);
        let json = summary(&sample_trace(), &metrics);
        assert!(json.contains("\"spans\": 2"));
        assert!(json.contains("\"events\": 1"));
        assert!(json.contains("\"name\":\"collect\",\"count\":1,\"total_s\":2.0"));
        assert!(json.contains("\"pipeline.retries\": {\"type\":\"counter\",\"value\":2}"));
        assert!(json.contains("\"type\":\"histogram\",\"count\":1"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(escape("a\nb\t\"c\"\\"), "a\\nb\\t\\\"c\\\"\\\\");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
