//! `autolearn-obs`: deterministic sim-time observability for the continuum.
//!
//! Everything in this crate is keyed on **simulated** time ([`SimTime`]) —
//! never the host clock — so two runs with the same seed and the same
//! fault plan produce byte-identical traces, metrics, and exports. The
//! crate sits just above `autolearn-util` in the dependency graph and
//! below everything else: net, cloud, edge, nn, and core all emit through
//! it, and it depends on none of them.
//!
//! The pieces:
//!
//! * [`trace`] — a grow-only span/event arena with explicit nesting.
//! * [`metrics`] — counters, gauges, and fixed-bucket histograms in a
//!   deterministic insertion-order registry.
//! * [`flight`] — a bounded ring of recent observations, dumped into a
//!   [`PostMortem`] when a run dies.
//! * [`export`] — chrome://tracing JSON (Perfetto-loadable) and a compact
//!   JSON summary, both hand-rolled for byte-stable output.
//! * [`Obs`] — the facade the rest of the workspace threads through: one
//!   object owning the trace, the registry, the flight recorder, and a
//!   simulated-time cursor.

/// Byte-stable exporters: chrome://tracing JSON and the compact summary.
pub mod export;
/// Bounded flight-recorder ring and crash post-mortems.
pub mod flight;
/// Counters, gauges and fixed-bucket histograms in insertion order.
pub mod metrics;
/// Sim-time span/event tracing core and the grow-only trace arena.
pub mod trace;

pub use export::{chrome_trace, summary};
pub use flight::{FlightEntry, FlightRecorder, PostMortem, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{Counter, Gauge, Histogram, Metric, MetricsRegistry};
pub use trace::{attr, AttrValue, Attrs, Event, Span, SpanId, Trace};

use autolearn_util::fault::{FaultSite, InjectedFault};
use autolearn_util::{SimDuration, SimTime};

/// Alias used throughout the instrumentation: all trace math is in
/// simulated seconds.
pub type SimSeconds = SimDuration;

/// The observability facade: one per run.
///
/// `Obs` owns the trace arena, the metrics registry, the flight recorder,
/// and a **simulated-time cursor**. Instrumented code advances the cursor
/// with [`Obs::advance`] as it charges simulated work, and every span,
/// event, and flight-recorder line is stamped from the cursor — so callers
/// never touch the host clock and never pass timestamps by hand.
#[derive(Debug, Clone)]
pub struct Obs {
    trace: Trace,
    metrics: MetricsRegistry,
    flight: FlightRecorder,
    now: SimTime,
    post_mortem: Option<PostMortem>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// A fresh observer with the cursor at `t+0` and the default flight
    /// ring capacity.
    pub fn new() -> Obs {
        Obs::with_flight_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A fresh observer keeping the last `capacity` flight entries.
    pub fn with_flight_capacity(capacity: usize) -> Obs {
        Obs {
            trace: Trace::new(),
            metrics: MetricsRegistry::new(),
            flight: FlightRecorder::with_capacity(capacity),
            now: SimTime::default(),
            post_mortem: None,
        }
    }

    /// The cursor: current position on the simulated timeline.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Move the cursor to an absolute instant (used when a run starts at a
    /// caller-chosen `SimTime` rather than `t+0`).
    pub fn set_now(&mut self, at: SimTime) {
        self.now = at;
    }

    /// Advance the cursor by `d` simulated seconds. The single place the
    /// timeline moves — instrumented drivers call it exactly once per unit
    /// of charged work so nothing is double-counted.
    pub fn advance(&mut self, d: SimDuration) {
        self.now = self.now + d;
    }

    /// Open a span at the cursor, nested under the innermost open span.
    pub fn begin_span(&mut self, name: &str) -> SpanId {
        let id = self.trace.begin_span(name, self.now);
        self.flight.record(self.now, format!("begin {name}"));
        id
    }

    /// Close `id` at the cursor (children still open close with it).
    pub fn end_span(&mut self, id: SpanId) {
        let name = self
            .trace
            .spans()
            .get(id.0)
            .map(|s| s.name.clone())
            .unwrap_or_default();
        self.trace.end_span(id, self.now);
        self.flight.record(self.now, format!("end {name}"));
    }

    /// Attach a typed attribute to a span.
    pub fn span_attr(&mut self, id: SpanId, key: &str, value: AttrValue) {
        self.trace.span_attr(id, key, value);
    }

    /// Record an instant event at the cursor, mirrored into the flight
    /// ring as `name key=value ...`.
    pub fn event(&mut self, name: &str, attrs: Attrs) {
        let mut line = String::from(name);
        for (k, v) in &attrs {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            match v {
                AttrValue::Int(x) => line.push_str(&x.to_string()),
                AttrValue::UInt(x) => line.push_str(&x.to_string()),
                AttrValue::F64(x) => line.push_str(&format!("{x:?}")),
                AttrValue::Str(s) => line.push_str(s),
                AttrValue::Bool(b) => line.push_str(&b.to_string()),
            }
        }
        self.flight.record(self.now, line);
        self.trace.event(name, self.now, attrs);
    }

    /// Add `delta` to the counter `name` (registered on first use).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    /// Raise the gauge `name` to `value` if it is higher (peak tracking).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        self.metrics.gauge_max(name, value);
    }

    /// Observe `value` into the histogram `name` (default seconds
    /// buckets when first registered).
    pub fn observe(&mut self, name: &str, value: f64) {
        self.metrics.observe(name, value);
    }

    /// Observe into a histogram with explicit bucket bounds on first
    /// registration.
    pub fn observe_with(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.metrics
            .observe_with(name, value, || Histogram::with_bounds(bounds));
    }

    /// Record a slice of newly injected faults (the tail of
    /// [`FaultPlan::injected`](autolearn_util::fault::FaultPlan::injected)
    /// since the caller last looked): one `fault` event each, plus a bump
    /// of the per-site `<site>.faults` counter. The bridge between the
    /// fault model and the trace lives here so net, cloud, and edge all
    /// report faults identically.
    pub fn record_injected_faults(&mut self, faults: &[InjectedFault]) {
        for f in faults {
            let counter = match f.site {
                FaultSite::Net => "net.faults",
                FaultSite::Cloud => "cloud.faults",
                FaultSite::Edge => "edge.faults",
            };
            self.counter_add(counter, 1);
            self.event(
                "fault",
                vec![
                    ("site".to_string(), AttrValue::Str(f.site.name().to_string())),
                    ("op".to_string(), AttrValue::Str(f.op.clone())),
                    ("kind".to_string(), AttrValue::Str(f.kind.to_string())),
                ],
            );
        }
    }

    /// Capture a post-mortem at the cursor: the rendered error plus the
    /// flight recorder's dump of the moments before it. Only the first
    /// failure of a run is kept.
    pub fn record_failure(&mut self, error: &str) {
        if self.post_mortem.is_some() {
            return;
        }
        self.post_mortem = Some(PostMortem {
            error: error.to_string(),
            at: self.now,
            recent: self.flight.dump(),
        });
    }

    /// The captured post-mortem, if the run failed.
    pub fn post_mortem(&self) -> Option<&PostMortem> {
        self.post_mortem.as_ref()
    }

    /// The underlying trace arena (read-only).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The metrics registry (read-only).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The flight recorder (read-only).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Export the trace in chrome://tracing format.
    pub fn export_chrome_trace(&self) -> String {
        chrome_trace(&self.trace)
    }

    /// Export the compact JSON summary (span totals + metrics).
    pub fn export_summary(&self) -> String {
        summary(&self.trace, &self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_stamps_spans_and_events() {
        let mut obs = Obs::new();
        let root = obs.begin_span("pipeline");
        obs.advance(SimDuration::from_secs(10.0));
        obs.event("checkpoint", vec![("stage".into(), AttrValue::Str("collect".into()))]);
        obs.advance(SimDuration::from_secs(5.0));
        obs.end_span(root);

        let span = &obs.trace().spans()[0];
        assert_eq!(span.start, SimTime::from_secs(0.0));
        assert_eq!(span.end, Some(SimTime::from_secs(15.0)));
        assert_eq!(obs.trace().events()[0].at, SimTime::from_secs(10.0));
        assert_eq!(obs.now(), SimTime::from_secs(15.0));
    }

    #[test]
    fn flight_ring_mirrors_boundaries_and_events() {
        let mut obs = Obs::new();
        let s = obs.begin_span("train");
        obs.event("epoch", vec![("n".into(), AttrValue::Int(1))]);
        obs.end_span(s);
        let lines: Vec<String> = obs.flight().entries().map(|e| e.line.clone()).collect();
        assert_eq!(lines, vec!["begin train", "epoch n=1", "end train"]);
    }

    #[test]
    fn metrics_route_through_the_facade() {
        let mut obs = Obs::new();
        obs.counter_add("net.faults", 2);
        obs.gauge_max("nn.scratch_peak_bytes", 100.0);
        obs.gauge_max("nn.scratch_peak_bytes", 50.0);
        obs.observe("pipeline.stage_seconds", 3.0);
        assert_eq!(obs.metrics().counter("net.faults"), 2);
        assert_eq!(obs.metrics().gauge("nn.scratch_peak_bytes"), 100.0);
        assert_eq!(
            obs.metrics().histogram("pipeline.stage_seconds").map(|h| h.count),
            Some(1)
        );
    }

    #[test]
    fn only_first_failure_is_kept() {
        let mut obs = Obs::new();
        obs.event("x", vec![]);
        obs.record_failure("first");
        obs.advance(SimDuration::from_secs(1.0));
        obs.record_failure("second");
        let pm = obs.post_mortem().unwrap();
        assert_eq!(pm.error, "first");
        assert_eq!(pm.at, SimTime::from_secs(0.0));
        assert_eq!(pm.recent.len(), 1);
    }

    #[test]
    fn exports_are_deterministic_via_the_facade() {
        let build = || {
            let mut obs = Obs::new();
            let s = obs.begin_span("run");
            obs.advance(SimDuration::from_secs(2.5));
            obs.counter_add("retries", 1);
            obs.end_span(s);
            obs
        };
        let (a, b) = (build(), build());
        assert_eq!(a.export_chrome_trace(), b.export_chrome_trace());
        assert_eq!(a.export_summary(), b.export_summary());
    }
}
