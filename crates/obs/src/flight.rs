//! The flight recorder: a bounded ring of the most recent observations.
//!
//! The full [`Trace`](crate::trace::Trace) arena is the archival record; the
//! flight recorder is the black box. It mirrors every span boundary and
//! event into a fixed-capacity ring of pre-rendered lines, so that when a
//! pipeline dies mid-run the error can ship the last N things that
//! happened — a post-mortem that costs O(capacity) memory no matter how
//! long the run was.

use autolearn_util::SimTime;
use std::collections::VecDeque;

/// One recorded entry: a simulated timestamp plus a rendered line.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// When it happened on the simulated timeline.
    pub at: SimTime,
    /// Human-readable description (already formatted).
    pub line: String,
}

/// Bounded ring of recent [`FlightEntry`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    entries: VecDeque<FlightEntry>,
    /// Total entries ever pushed (including the ones the ring dropped).
    recorded: u64,
}

/// Default ring capacity: enough for the full seven-stage lesson with a
/// worst-case chaos plan, small enough to embed in any error report.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` entries (minimum 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            recorded: 0,
        }
    }

    /// Record one line, evicting the oldest entry when full.
    pub fn record(&mut self, at: SimTime, line: String) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(FlightEntry { at, line });
        self.recorded += 1;
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &FlightEntry> {
        self.entries.iter()
    }

    /// Render the ring as `t+...  line` rows, oldest first — the body of a
    /// post-mortem.
    pub fn dump(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| format!("{}  {}", e.at, e.line))
            .collect()
    }

    /// Total entries ever recorded (the ring may retain fewer).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The post-mortem attached to a failed run: the error plus the flight
/// recorder's view of the moments before it.
#[derive(Debug, Clone, PartialEq)]
pub struct PostMortem {
    /// Rendered error that killed the run.
    pub error: String,
    /// The simulated instant the run died.
    pub at: SimTime,
    /// The flight recorder dump, oldest first.
    pub recent: Vec<String>,
}

impl std::fmt::Display for PostMortem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "post-mortem at {}: {}", self.at, self.error)?;
        writeln!(f, "last {} recorded entries:", self.recent.len())?;
        for line in &self.recent {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut fr = FlightRecorder::with_capacity(3);
        for i in 0..10 {
            fr.record(t(i as f64), format!("entry-{i}"));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.recorded(), 10);
        let lines: Vec<&str> = fr.entries().map(|e| e.line.as_str()).collect();
        assert_eq!(lines, vec!["entry-7", "entry-8", "entry-9"]);
    }

    #[test]
    fn dump_renders_timestamps_oldest_first() {
        let mut fr = FlightRecorder::with_capacity(8);
        fr.record(t(1.0), "first".into());
        fr.record(t(2.0), "second".into());
        let dump = fr.dump();
        assert_eq!(dump.len(), 2);
        assert!(dump[0].contains("first") && dump[0].starts_with("t+"));
        assert!(dump[1].contains("second"));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut fr = FlightRecorder::with_capacity(0);
        fr.record(t(0.0), "x".into());
        fr.record(t(1.0), "y".into());
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.entries().next().unwrap().line, "y");
    }

    #[test]
    fn post_mortem_displays_error_and_tail() {
        let pm = PostMortem {
            error: "stage 'reserve' failed".into(),
            at: t(30.0),
            recent: vec!["a".into(), "b".into()],
        };
        let text = pm.to_string();
        assert!(text.contains("stage 'reserve' failed"));
        assert!(text.contains("last 2 recorded entries"));
    }
}
