//! Deterministic metrics: counters, gauges and fixed-bucket histograms.
//!
//! The registry keeps every metric in *insertion order* (a `Vec` plus a
//! name index), so a summary export is byte-identical across same-seed
//! replays — no hash-map iteration anywhere near an output (the
//! `no-unordered-iteration` lint's whole concern). Histograms use fixed
//! bucket bounds chosen at registration time; observations are counted
//! into the first bucket whose upper bound admits them, with an implicit
//! `+inf` overflow bucket, mirroring the Prometheus layout every
//! production metrics pipeline speaks.

use std::collections::BTreeMap;

/// A monotonically increasing count of things that happened.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counter {
    /// Current count.
    pub value: u64,
}

/// A point-in-time measurement (last value wins; [`Gauge::record_max`]
/// keeps peaks instead).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gauge {
    /// Current value.
    pub value: f64,
}

/// A fixed-bucket histogram over `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing.
    pub bounds: Vec<f64>,
    /// Observation counts per finite bucket, plus one overflow bucket at
    /// the end (`counts.len() == bounds.len() + 1`).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observation (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl Histogram {
    /// A histogram with the given finite bucket upper bounds. Bounds are
    /// sorted and deduplicated; an empty list leaves only the overflow
    /// bucket.
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        let mut sorted: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let n = sorted.len();
        Histogram {
            bounds: sorted,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Default latency buckets for simulated-seconds quantities: sub-second
    /// through multi-hour, roughly geometric.
    pub fn seconds_buckets() -> Histogram {
        Histogram::with_bounds(&[
            0.01, 0.1, 1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0, 14400.0,
        ])
    }

    /// Count one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `p`-th percentile (`p` in `[0, 100]`): the upper bound of
    /// the bucket holding the `ceil(p/100 * count)`-th observation, clamped
    /// to the observed `max` so the overflow bucket reports a finite value.
    /// Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                return bound.min(self.max);
            }
        }
        self.max
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Counter),
    /// A [`Gauge`].
    Gauge(Gauge),
    /// A [`Histogram`].
    Histogram(Histogram),
}

/// The per-run metric registry: named metrics in deterministic insertion
/// order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
    index: BTreeMap<String, usize>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `n` to the counter `name`, creating it at zero on first touch.
    /// A name already registered as a different metric type is left
    /// untouched (no panics mid-run).
    pub fn counter_add(&mut self, name: &str, n: u64) {
        let idx = self.ensure(name, || Metric::Counter(Counter::default()));
        if let Metric::Counter(c) = &mut self.entries[idx].1 {
            c.value = c.value.saturating_add(n);
        }
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        let idx = self.ensure(name, || Metric::Gauge(Gauge::default()));
        if let Metric::Gauge(g) = &mut self.entries[idx].1 {
            g.value = value;
        }
    }

    /// Raise the gauge `name` to `value` if larger (peak tracking — scratch
    /// arena high-water marks, worst stage time).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let idx = self.ensure(name, || Metric::Gauge(Gauge::default()));
        if let Metric::Gauge(g) = &mut self.entries[idx].1 {
            if value > g.value {
                g.value = value;
            }
        }
    }

    /// Observe `value` into the histogram `name`, creating it with
    /// [`Histogram::seconds_buckets`] on first touch.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.observe_with(name, value, Histogram::seconds_buckets);
    }

    /// Observe `value` into the histogram `name`, creating it with
    /// `make` on first touch (for non-latency bucket layouts).
    pub fn observe_with(&mut self, name: &str, value: f64, make: impl FnOnce() -> Histogram) {
        let idx = self.ensure(name, || Metric::Histogram(make()));
        if let Metric::Histogram(h) = &mut self.entries[idx].1 {
            h.observe(value);
        }
    }

    /// The metric registered as `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.index.get(name).map(|i| &self.entries[*i].1)
    }

    /// The counter value of `name` (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Metric::Counter(c)) => c.value,
            _ => 0,
        }
    }

    /// The gauge value of `name` (0 when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(Metric::Gauge(g)) => g.value,
            _ => 0.0,
        }
    }

    /// The histogram registered as `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Every metric, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn ensure(&mut self, name: &str, make: impl FnOnce() -> Metric) -> usize {
        if let Some(i) = self.index.get(name) {
            return *i;
        }
        let i = self.entries.len();
        self.entries.push((name.to_string(), make()));
        self.index.insert(name.to_string(), i);
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("net.attempts", 1);
        m.counter_add("net.attempts", 2);
        assert_eq!(m.counter("net.attempts"), 3);
        m.counter_add("net.attempts", u64::MAX);
        assert_eq!(m.counter("net.attempts"), u64::MAX);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_set_and_track_peaks() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("x", 4.0);
        m.gauge_set("x", 2.0);
        assert_eq!(m.gauge("x"), 2.0);
        m.gauge_max("peak", 5.0);
        m.gauge_max("peak", 3.0);
        m.gauge_max("peak", 9.0);
        assert_eq!(m.gauge("peak"), 9.0);
    }

    #[test]
    fn insertion_order_is_stable() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z", 1);
        m.gauge_set("a", 1.0);
        m.observe("m", 1.0);
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z", "a", "m"]);
        // Re-touching does not reorder.
        m.counter_add("z", 1);
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z", "a", "m"]);
    }

    #[test]
    fn type_confusion_is_ignored_not_fatal() {
        let mut m = MetricsRegistry::new();
        m.counter_add("x", 2);
        m.gauge_set("x", 7.0); // wrong type: ignored
        assert_eq!(m.counter("x"), 2);
        assert_eq!(m.gauge("x"), 0.0);
    }

    #[test]
    fn histogram_buckets_count_observations() {
        let mut h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
        for v in [0.5, 0.9, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 1, 1, 1]);
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 500.0);
        assert!((h.mean() - 111.28).abs() < 1e-9);
        // Boundary lands in the bucket it bounds (le semantics).
        let mut edge = Histogram::with_bounds(&[1.0, 10.0]);
        edge.observe(1.0);
        assert_eq!(edge.counts, vec![1, 0, 0]);
    }

    #[test]
    fn histogram_percentiles_use_bucket_bounds() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0, 4.0, 8.0]);
        for _ in 0..50 {
            h.observe(0.5); // bucket <=1
        }
        for _ in 0..40 {
            h.observe(1.5); // bucket <=2
        }
        for _ in 0..10 {
            h.observe(6.0); // bucket <=8
        }
        assert_eq!(h.percentile(50.0), 1.0);
        assert_eq!(h.percentile(90.0), 2.0);
        // The tail buckets report their bound clamped to the observed max:
        // no percentile can exceed a value that was actually seen.
        assert_eq!(h.percentile(99.0), 6.0);
        assert_eq!(h.percentile(100.0), 6.0);
    }

    #[test]
    fn histogram_overflow_bucket_clamps_to_observed_max() {
        let mut h = Histogram::with_bounds(&[1.0]);
        h.observe(1000.0);
        h.observe(2000.0);
        assert_eq!(h.counts, vec![0, 2]);
        // The +inf bucket reports the observed max, not infinity.
        assert_eq!(h.percentile(50.0), 2000.0);
        assert!(h.percentile(50.0).is_finite());
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::with_bounds(&[1.0, 2.0]);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count, 0);
    }

    #[test]
    fn bounds_are_sorted_and_deduped() {
        let h = Histogram::with_bounds(&[10.0, 1.0, 10.0, f64::INFINITY, 5.0]);
        assert_eq!(h.bounds, vec![1.0, 5.0, 10.0]);
        assert_eq!(h.counts.len(), 4);
    }
}
