//! Offline shim for the `serde` crate.
//!
//! Instead of serde's zero-copy visitor architecture, this shim routes all
//! (de)serialization through an owned JSON-like [`Value`] tree: `Serialize`
//! renders a value into a tree, `Deserialize` rebuilds one from it, and the
//! companion `serde_json` shim prints/parses the tree as JSON text. That is
//! dramatically simpler than real serde and fully sufficient for the
//! workspace, which only ever serializes owned config/report structs to
//! JSON and back.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A JSON number. Integers are kept exact (no round-trip through `f64`) so
/// `u64` ids survive serialization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// An owned serialization tree, isomorphic to a JSON document.
///
/// Objects preserve insertion order (fields serialize in declaration order),
/// which keeps emitted JSON stable and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// (De)serialization error: a message plus an outermost-first field path.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// Prefix the error with the field/context it occurred under.
    pub fn context(self, key: &str) -> Error {
        Error {
            msg: format!("{key}: {}", self.msg),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Deserialize one field of an object; absent keys deserialize from `Null`
/// (so `Option` fields default to `None`, everything else reports the
/// missing key).
pub fn de_field<T: Deserialize>(fields: &[(String, Value)], key: &str) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v).map_err(|e| e.context(key)),
        None => T::deserialize(&Value::Null)
            .map_err(|_| Error::new(format!("missing field `{key}`"))),
    }
}

fn mismatch(expected: &str, got: &Value) -> Error {
    Error::new(format!("expected {expected}, found {}", got.type_name()))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(mismatch("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::new(concat!("number out of range for ", stringify!($t)))),
                    other => Err(mismatch("number", other)),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::new(concat!("number out of range for ", stringify!($t)))),
                    other => Err(mismatch("number", other)),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            other => Err(mismatch("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(n.as_f64() as f32),
            other => Err(mismatch("number", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(mismatch("single-char string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(mismatch("array", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v).map_err(|e| e.context(k))?)))
                .collect(),
            other => Err(mismatch("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so emitted JSON is deterministic.
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v).map_err(|e| e.context(k))?)))
                .collect(),
            other => Err(mismatch("object", other)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.as_array().ok_or_else(|| mismatch("array", v))?;
                if items.len() != LEN {
                    return Err(Error::new(format!(
                        "expected {LEN}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_integer_exactness() {
        let big = u64::MAX - 3;
        let v = big.serialize();
        assert_eq!(u64::deserialize(&v).unwrap(), big);
    }

    #[test]
    fn option_roundtrip_and_missing_fields() {
        let v = Some(3u32).serialize();
        assert_eq!(Option::<u32>::deserialize(&v).unwrap(), Some(3));
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        let fields: Vec<(String, Value)> = Vec::new();
        let got: Option<u32> = de_field(&fields, "absent").unwrap();
        assert_eq!(got, None);
        assert!(de_field::<u32>(&fields, "absent").is_err());
    }

    #[test]
    fn collections_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2);
        let back: BTreeMap<String, u32> = Deserialize::deserialize(&m.serialize()).unwrap();
        assert_eq!(back, m);

        let s: BTreeSet<u64> = [3, 1, 2].into_iter().collect();
        let back: BTreeSet<u64> = Deserialize::deserialize(&s.serialize()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn type_mismatch_reports_both_sides() {
        let err = u32::deserialize(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("number"));
        assert!(err.to_string().contains("string"));
    }
}
