//! Offline shim for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! shim's owned [`Value`] tree. The input item is parsed with a hand-rolled
//! walk over `proc_macro::TokenTree` (no `syn`/`quote` available offline),
//! which supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (`#[serde(skip)]` honoured: skipped on
//!   serialize, `Default::default()` on deserialize),
//! * tuple structs (newtypes serialize transparently, wider ones as arrays),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generic types are intentionally rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (doc comments, #[serde(...)] on the item, ...)
    // and the visibility qualifier.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::TupleStruct(0),
            other => panic!("serde shim derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unsupported enum body {other:?}"),
        },
        kw => panic!("serde shim derive: cannot derive for `{kw}` items"),
    };

    Item { name, kind }
}

/// Does an attribute group's stream spell `serde(skip)`?
fn is_skip_attr(stream: TokenStream) -> bool {
    let mut iter = stream.into_iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" =>
        {
            args.stream().into_iter().any(
                |t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "skip"),
            )
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        // Field attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                skip |= is_skip_attr(g.stream());
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Consume the type: everything up to the next comma at angle-depth 0.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx == tokens.len() - 1 {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant attributes (doc comments).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Past the comma separating variants.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// --------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((\"{n}\".to_string(), ::serde::Serialize::serialize(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__fields)"
            )
        }
        Kind::TupleStruct(0) => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::serialize(__f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::serialize({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{n}: ::std::default::Default::default(),\n",
                        n = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::de_field(__obj, \"{n}\")?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::Error::new(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Kind::TupleStruct(0) => format!("let _ = __v; Ok({name})"),
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| \
                     ::serde::Error::new(\"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{\n\
                     return Err(::serde::Error::new(format!(\
                         \"expected {n} elements for {name}, found {{}}\", __items.len())));\n\
                 }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize(__payload)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize(&__items[{i}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __items = __payload.as_array().ok_or_else(|| \
                                     ::serde::Error::new(\"expected array payload for {name}::{vn}\"))?;\n\
                                 if __items.len() != {n} {{\n\
                                     return Err(::serde::Error::new(\"wrong payload arity for {name}::{vn}\"));\n\
                                 }}\n\
                                 Ok({name}::{vn}({items}))\n\
                             }}\n",
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{n}: ::serde::de_field(__inner, \"{n}\")?",
                                    n = f.name
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __inner = __payload.as_object().ok_or_else(|| \
                                     ::serde::Error::new(\"expected object payload for {name}::{vn}\"))?;\n\
                                 Ok({name}::{vn} {{ {inits} }})\n\
                             }}\n",
                            inits = inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => Err(::serde::Error::new(format!(\
                             \"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __payload) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\
                             __other => Err(::serde::Error::new(format!(\
                                 \"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::Error::new(\
                         \"expected string or single-key object for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
