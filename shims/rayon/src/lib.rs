//! Offline shim for `rayon`.
//!
//! Exposes the parallel-iterator entry points the workspace uses
//! (`par_chunks_mut`, `par_iter`, `par_iter_mut`, `into_par_iter`) as plain
//! sequential `std` iterators. The build/test host is single-core, so a
//! thread pool would only add overhead; the *interface* is preserved so the
//! numeric kernels keep their data-parallel structure and a future PR can
//! swap a real pool back in.

pub mod prelude {
    /// `slice.par_chunks_mut(n)` -> sequential `chunks_mut(n)`.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// `slice.par_chunks(n)` -> sequential `chunks(n)`.
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `collection.into_par_iter()` -> sequential `into_iter()`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `collection.par_iter()` / `par_iter_mut()` -> sequential borrows.
    pub trait IntoParallelRefIterator<'a> {
        type Iter: Iterator;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    pub trait IntoParallelRefMutIterator<'a> {
        type Iter: Iterator;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_matches_chunks_mut() {
        let mut data = vec![0u32; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(data, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn into_par_iter_collects_in_order() {
        let squares: Vec<usize> = (0..6usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, [0, 1, 4, 9, 16, 25]);
    }
}
