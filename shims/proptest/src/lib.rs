//! Offline shim for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::select`, and the
//! `prop_assert*` macros. Differences from real proptest:
//!
//! * cases are generated from a fixed seed (deterministic run-to-run) with
//!   no persisted failure file,
//! * failures panic immediately with the case number — there is **no
//!   shrinking**, so the reported counterexample is the raw generated one.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates values of `Self::Value` from an RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Lengths acceptable to [`prop::collection::vec`]: a fixed size or a range.
pub trait VecLen {
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl VecLen for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl VecLen for core::ops::Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl VecLen for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

pub mod strategy {
    pub use super::Strategy;

    /// Strategy for `Vec<T>` with element strategy `S` and length spec `L`.
    pub struct VecStrategy<S, L> {
        pub(crate) element: S,
        pub(crate) len: L,
    }

    impl<S: Strategy, L: super::VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy choosing uniformly from a fixed set of options.
    pub struct Select<T> {
        pub(crate) options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut super::StdRng) -> T {
            use rand::seq::SliceRandom;
            self.options
                .choose(rng)
                .expect("prop::sample::select requires at least one option")
                .clone()
        }
    }
}

pub mod prop {
    pub mod collection {
        /// `vec(element_strategy, len_or_range)`.
        pub fn vec<S: crate::Strategy, L: crate::VecLen>(
            element: S,
            len: L,
        ) -> crate::strategy::VecStrategy<S, L> {
            crate::strategy::VecStrategy { element, len }
        }
    }

    pub mod sample {
        /// `select(options)`: uniform choice from a non-empty vector.
        pub fn select<T: Clone>(options: Vec<T>) -> crate::strategy::Select<T> {
            assert!(!options.is_empty(), "select requires options");
            crate::strategy::Select { options }
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // Decorrelate per-test streams the same way util::rng::derive_seed does.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 0u64..100, f in -1.0f32..=1.0) {
            prop_assert!(a < 100);
            prop_assert!((-1.0..=1.0).contains(&f));
        }

        /// Vec + tuple strategies compose; lengths respect the range.
        #[test]
        fn vec_of_tuples(v in prop::collection::vec((0u8..10, 0.0f64..1.0), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for (b, f) in v {
                prop_assert!(b < 10);
                prop_assert!((0.0..1.0).contains(&f));
            }
        }

        /// select() only yields listed options.
        #[test]
        fn select_yields_options(c in prop::sample::select(vec![1usize, 3])) {
            prop_assert!(c == 1 || c == 3);
        }
    }

    proptest! {
        /// Default config path (no proptest_config line) also compiles.
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }
}
