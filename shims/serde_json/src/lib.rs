//! Offline shim for `serde_json`: prints and parses the `serde` shim's
//! [`Value`] tree as JSON text.
//!
//! Supports the full JSON grammar (strings with escapes incl. `\uXXXX`
//! surrogate pairs, exact u64/i64 integers, floats, nested arrays/objects).
//! Non-finite floats are a serialization error, as in real serde_json.

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};

/// Serialize to compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), None, 0, &mut out)?;
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parse JSON text and deserialize into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize(&value)
}

// --------------------------------------------------------------- printing

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out)?,
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            write_break(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out)?;
            }
            write_break(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn write_break(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_number(n: Number, out: &mut String) -> Result<(), Error> {
    match n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // `{}` on f64 is the shortest representation that round-trips.
            let s = v.to_string();
            out.push_str(&s);
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; compensate for
                            // the += 1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (1–4 bytes).
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(&rest[..rest.len().min(4)])
                        .or_else(|e| {
                            std::str::from_utf8(&rest[..e.valid_up_to().max(1)])
                        })
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("bad string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let num = if is_float {
            Number::F(text.parse::<f64>().map_err(|_| self.err("bad number"))?)
        } else if text.starts_with('-') {
            Number::I(text.parse::<i64>().map_err(|_| self.err("bad number"))?)
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::U(v),
                Err(_) => Number::F(text.parse::<f64>().map_err(|_| self.err("bad number"))?),
            }
        };
        Ok(Value::Num(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        let v: u64 = from_str("42").unwrap();
        assert_eq!(v, 42);
        let f: f32 = from_str("0.25").unwrap();
        assert_eq!(f, 0.25);
    }

    #[test]
    fn exact_u64_roundtrip() {
        let big = u64::MAX - 1;
        let s = to_string(&big).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn nested_containers_roundtrip() {
        let data: Vec<Vec<f32>> = vec![vec![1.0, 2.5], vec![], vec![-0.125]];
        let s = to_string(&data).unwrap();
        let back: Vec<Vec<f32>> = from_str(&s).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn pretty_print_is_indented_and_reparses() {
        let data: Vec<u32> = vec![1, 2];
        let s = to_string_pretty(&data).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn string_escapes_parse() {
        let s: String = from_str(r#""aA\né😀""#).unwrap();
        assert_eq!(s, "aA\né😀");
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("42 trailing").is_err());
        assert!(from_str::<u64>("\"unterminated").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
