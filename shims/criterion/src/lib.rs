//! Offline shim for `criterion`.
//!
//! Keeps the `criterion_group!` / `criterion_main!` / `bench_function`
//! surface so the workspace's `harness = false` bench targets compile and
//! run offline. Measurement is a simple calibrated wall-clock loop printing
//! mean ns/iter — adequate for relative comparisons, with none of real
//! criterion's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, repeating it enough times to get a stable-ish estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count taking ~50ms.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(50) || n >= 1 << 20 {
                self.iters = n;
                self.elapsed = took;
                return;
            }
            n = n.saturating_mul(4);
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

/// Top-level bench context.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {name:<40} {:>14.1} ns/iter  ({} iters)", b.ns_per_iter(), b.iters);
        self
    }

    /// Real criterion parses CLI args here; the shim has none.
    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }
}
