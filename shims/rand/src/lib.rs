//! Offline shim for the `rand` 0.8 crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the *subset* of the rand API it actually uses. The
//! generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the
//! reproduction requires (experiments replay bit-for-bit against *this*
//! shim; bit-compatibility with upstream rand is a non-goal).

/// Core random source: everything reduces to a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly "at large" (rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, solid statistical quality, 256-bit state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, lane) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *lane = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // all-zero state is a fixed point
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut z = state;
            StdRng {
                s: [
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                ],
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling/choosing (rand's `SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Process-global convenience sampler (rand's `random()`): unique-ish values
/// across calls *and* across concurrently running test processes, which is
/// what the callers (temp-dir naming) need.
pub fn random<T: Standard>() -> T {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};

    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let pid = std::process::id() as u64;
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut rng =
        <rngs::StdRng as SeedableRng>::seed_from_u64(nanos ^ (pid << 32) ^ n.wrapping_mul(0x9e37));
    T::sample(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = rng.gen_range(3..=3);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean badly off: {sum}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice sorted");
    }

    #[test]
    fn random_values_differ() {
        let a: u64 = super::random();
        let b: u64 = super::random();
        assert_ne!(a, b);
    }
}
