//! Property tests: the symbolic zoo plan matches the real models.
//!
//! For every zoo architecture and randomized viable camera geometry, the
//! static plan ([`CarModel::plan`]) must agree *exactly* with the model
//! [`CarModel::build`] constructs: same input shape, same parameter count
//! (a parameter-count match across random shapes pins every inferred
//! intermediate shape), and a real forward pass on tub-shaped data must
//! succeed. The same plan must also clear the pipeline contract pass
//! ([`validate_pipeline`]) with the matching frame contract — and fail it
//! when the tub geometry disagrees.

use autolearn::dataset::records_to_dataset;
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelConfig, ModelKind};
use autolearn_nn::{
    standard_stages, validate_model, validate_pipeline, DType, FrameContract,
};
use autolearn_tub::Record;
use autolearn_util::Image;
use proptest::prelude::*;

fn model_cfg(c: usize, h: usize, w: usize, seq_len: usize, history: usize) -> ModelConfig {
    ModelConfig {
        channels: c,
        height: h,
        width: w,
        seq_len,
        history,
        ..Default::default()
    }
}

/// The input shape `CarModel::build` actually feeds the trunk, batch 1.
fn expected_input(kind: ModelKind, cfg: &ModelConfig) -> Vec<usize> {
    let (c, h, w, t) = (cfg.channels, cfg.height, cfg.width, cfg.seq_len);
    match kind {
        ModelKind::Rnn => vec![1, t, c, h, w],
        ModelKind::ThreeD => vec![1, c, t, h, w],
        _ => vec![1, c, h, w],
    }
}

fn frames(cfg: &ModelConfig) -> FrameContract {
    FrameContract {
        channels: cfg.channels,
        height: cfg.height,
        width: cfg.width,
        dtype: DType::F32,
    }
}

fn tub_records(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let mut img = Image::new(16, 12, 3);
            img.data.fill((i * 17 % 251) as u8);
            Record::new(i as u64, ((i % 5) as f32 - 2.0) / 2.0, 0.5, i as u64 * 50, img)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Plan-inferred parameters and input shapes match the built model,
    /// and the contract pass accepts the matching frame geometry — for
    /// all six zoo kinds over random viable camera sizes.
    #[test]
    fn plan_matches_built_model_for_all_kinds(
        c in prop::sample::select(vec![1usize, 3]),
        h in 18usize..30,
        w in 18usize..40,
        seq_len in 3usize..6,
        history in 1usize..5,
    ) {
        let cfg = model_cfg(c, h, w, seq_len, history);
        for kind in ModelKind::all() {
            let spec = CarModel::plan(kind, &cfg);
            prop_assert_eq!(&spec.input, &expected_input(kind, &cfg), "{:?}", kind);

            let report = validate_model(&spec)
                .unwrap_or_else(|e| panic!("{kind:?}: plan failed validation: {e:?}"));
            let mut model = CarModel::build(kind, &cfg);
            prop_assert_eq!(
                report.total_params as usize,
                model.param_count(),
                "plan params diverge from built model for {:?} at {}x{}x{}",
                kind, c, h, w
            );

            // The same plan clears the full pipeline contract.
            let contract = validate_pipeline(
                &standard_stages(true),
                &spec,
                CarModel::frame_layout(kind),
                &frames(&cfg),
            )
            .unwrap_or_else(|e| panic!("{kind:?}: contract pass failed: {e:?}"));
            prop_assert_eq!(contract.total_params, report.total_params);
            prop_assert_eq!(contract.feature_dim, report.feature_dim);
        }
    }

    /// A real forward pass over tub-shaped data works for every kind at
    /// the planned shapes, and predictions stay in control range.
    #[test]
    fn forward_pass_agrees_with_plan(
        c in prop::sample::select(vec![1usize, 3]),
        h in 18usize..26,
        w in 18usize..30,
        seq_len in 3usize..5,
    ) {
        let cfg = model_cfg(c, h, w, seq_len, 2);
        let raw = records_to_dataset(&tub_records(12), &cfg);
        for kind in ModelKind::all() {
            let mut model = CarModel::build(kind, &cfg);
            let data = prepare_dataset(&raw, model.input_spec());
            let batches = data.batches(2, false, 0);
            prop_assert!(!batches.is_empty(), "{:?}: no batches", kind);
            let preds = model.predict(&batches[0].inputs);
            prop_assert_eq!(preds.len(), batches[0].len(), "{:?}", kind);
            for (s, t) in preds {
                prop_assert!((-1.0..=1.0).contains(&s), "{:?}: steering {}", kind, s);
                prop_assert!((0.0..=1.0).contains(&t), "{:?}: throttle {}", kind, t);
                prop_assert!(s.is_finite() && t.is_finite(), "{:?}", kind);
            }
        }
    }

    /// The contract pass rejects a tub whose frame geometry disagrees
    /// with the model plan, for every kind.
    #[test]
    fn contract_rejects_mismatched_tub_geometry(
        c in prop::sample::select(vec![1usize, 3]),
        h in 18usize..26,
        w in 18usize..30,
    ) {
        let cfg = model_cfg(c, h, w, 3, 2);
        for kind in ModelKind::all() {
            let spec = CarModel::plan(kind, &cfg);
            let mut wrong = frames(&cfg);
            wrong.width += 1;
            let errs = validate_pipeline(
                &standard_stages(true),
                &spec,
                CarModel::frame_layout(kind),
                &wrong,
            )
            .expect_err("geometry mismatch must be rejected");
            prop_assert!(
                errs.iter().any(|e| e.message.contains("shape mismatch")),
                "{:?}: {:?}", kind, errs
            );
        }
    }
}
