//! Cross-crate integration: the data path from simulated driving through
//! on-disk tub storage, cleaning, training, and autonomous evaluation.

use autolearn::collect::{collect_session, CollectConfig, CollectionPath};
use autolearn::dataset::records_to_dataset;
use autolearn::modelpilot::ModelPilot;
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelConfig, ModelKind, SavedModel};
use autolearn_nn::{TrainConfig, Trainer};
use autolearn_sim::{CameraConfig, CarConfig, DriveConfig, Simulation};
use autolearn_track::circle_track;
use autolearn_tub::{CleanConfig, Tub, TubCleaner};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "autolearn-integration-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn model_cfg(seed: u64) -> ModelConfig {
    ModelConfig {
        height: 30,
        width: 40,
        channels: 1,
        seed,
        ..Default::default()
    }
}

#[test]
fn collect_store_clean_train_evaluate_via_disk() {
    let track = circle_track(3.0, 0.8);
    let tmp = TempDir::new("roundtrip");

    // 1. Collect with a sloppy "physical car" driver.
    let collected = collect_session(
        &track,
        &CollectConfig::new(CollectionPath::PhysicalCar, 90.0, 31),
    );
    assert_eq!(collected.records.len(), 1800);

    // 2. Persist to a real on-disk tub (the format of §3.3).
    let tub_dir = tmp.0.join("tub");
    {
        let mut tub = Tub::create(&tub_dir).unwrap();
        tub.metadata_mut().insert("track".into(), track.name().into());
        for r in collected.records {
            tub.write_record(r).unwrap();
        }
        assert_eq!(tub.record_count(), 1800);
        assert_eq!(tub.catalog_count(), 2); // rotated at 1000

        // 3. tubclean marks deletions in the manifest.
        let cleaner = TubCleaner::new(CleanConfig::default());
        let _report = cleaner.clean_tub(&mut tub).unwrap();
    }

    // 4. Reopen from disk, read live records with images.
    let tub = Tub::open(&tub_dir).unwrap();
    let live = tub.read_live().unwrap();
    assert_eq!(live.len(), tub.live_record_count());
    assert!(live.iter().all(|r| r.image.is_some()));
    assert!(live.iter().all(|r| !r.crashed));

    // 5. Train on the cleaned, disk-roundtripped data.
    let cfg = model_cfg(31);
    let mut model = CarModel::build(ModelKind::Linear, &cfg);
    let data = prepare_dataset(&records_to_dataset(&live, &cfg), model.input_spec());
    let report = Trainer::new(TrainConfig {
        epochs: 8,
        seed: 31,
        ..Default::default()
    })
    .fit(&mut model, &data)
    .expect("zoo graph validates");
    assert!(report.best_val_loss.is_finite());

    // 6. The model drives the (clean) car.
    let mut sim = Simulation::new(
        track,
        CarConfig::default(),
        CameraConfig::small(),
        DriveConfig {
            store_images: false,
            ..Default::default()
        },
    );
    let mut pilot = ModelPilot::new(model);
    let session = sim.run(&mut pilot, 30.0);
    assert!(
        session.autonomy() > 0.8,
        "autonomy {} after disk roundtrip",
        session.autonomy()
    );
}

#[test]
fn saved_model_survives_objectstore_roundtrip() {
    use autolearn_cloud::objectstore::ObjectStore;

    let track = circle_track(3.0, 0.8);
    let collected = collect_session(
        &track,
        &CollectConfig::new(CollectionPath::Simulator, 40.0, 33),
    );
    let cfg = model_cfg(33);
    let mut model = CarModel::build(ModelKind::Inferred, &cfg);
    let data = prepare_dataset(
        &records_to_dataset(&collected.records, &cfg),
        model.input_spec(),
    );
    Trainer::new(TrainConfig {
        epochs: 4,
        seed: 33,
        ..Default::default()
    })
    .fit(&mut model, &data)
    .expect("zoo graph validates");

    // PUT the trained model into the object store as JSON (what the module
    // stores as "pre-trained models", §3.5)...
    let saved = SavedModel::capture(&mut model);
    let mut store = ObjectStore::new();
    store.put(
        "models",
        "inferred-circle.json",
        saved.to_json().into_bytes(),
        Default::default(),
    );

    // ... GET it back and check prediction equality.
    let bytes = store.get("models", "inferred-circle.json").unwrap();
    let restored = SavedModel::from_json(std::str::from_utf8(&bytes.data).unwrap()).unwrap();
    let mut m2 = restored.restore();

    let probe = prepare_dataset(
        &records_to_dataset(&collected.records[..8], &cfg),
        model.input_spec(),
    );
    let batch = &probe.batches(8, false, 0)[0];
    assert_eq!(model.predict(&batch.inputs), m2.predict(&batch.inputs));
}

#[test]
fn sequence_model_trains_through_full_path() {
    let track = circle_track(3.0, 0.8);
    let collected = collect_session(
        &track,
        &CollectConfig::new(CollectionPath::Simulator, 50.0, 35),
    );
    let cfg = model_cfg(35);
    let mut model = CarModel::build(ModelKind::Rnn, &cfg);
    let data = prepare_dataset(
        &records_to_dataset(&collected.records, &cfg),
        model.input_spec(),
    );
    // Sequence windows: N - T + 1 examples.
    assert_eq!(data.len(), collected.records.len() - cfg.seq_len + 1);
    let report = Trainer::new(TrainConfig {
        epochs: 3,
        seed: 35,
        ..Default::default()
    })
    .fit(&mut model, &data)
    .expect("zoo graph validates");
    assert!(report.best_val_loss.is_finite());
}
