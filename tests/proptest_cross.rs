//! Cross-crate property tests.

use autolearn::dataset::{image_to_input, records_to_dataset, tub_bytes_estimate};
use autolearn::pathway::competition_score;
use autolearn::placement::max_safe_speed;
use autolearn_nn::models::ModelConfig;
use autolearn_net::{rpc_round_trip, transfer_time, Link, Path, TransferSpec};
use autolearn_tub::Record;
use autolearn_util::{Bytes, Image};
use proptest::prelude::*;

fn cfg() -> ModelConfig {
    ModelConfig {
        height: 30,
        width: 40,
        channels: 1,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any image converts to a correctly-shaped, normalised tensor.
    #[test]
    fn image_conversion_total(w in 8usize..64, h in 8usize..48, c in prop::sample::select(vec![1usize, 3]), fill in 0u8..=255) {
        let mut img = Image::new(w, h, c);
        img.data.fill(fill);
        let t = image_to_input(&img, &cfg());
        prop_assert_eq!(t.shape(), &[1, 30, 40]);
        prop_assert!(t.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Constant image stays constant through resize/grayscale.
        let expect = f32::from(fill) / 255.0;
        prop_assert!(t.data().iter().all(|&v| (v - expect).abs() < 1e-5));
    }

    /// Dataset targets stay aligned and clamped for arbitrary records.
    #[test]
    fn records_dataset_alignment(controls in prop::collection::vec((-2.0f32..2.0, -1.0f32..2.0), 4..32)) {
        let records: Vec<Record> = controls
            .iter()
            .enumerate()
            .map(|(i, &(s, t))| Record::new(i as u64, s, t, i as u64 * 50, Image::new(40, 30, 1)))
            .collect();
        let d = records_to_dataset(&records, &cfg());
        prop_assert_eq!(d.len(), records.len());
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(d.steering()[i], r.steering);
            prop_assert!((-1.0..=1.0).contains(&d.steering()[i]));
            prop_assert!((0.0..=1.0).contains(&d.throttle()[i]));
        }
        prop_assert_eq!(tub_bytes_estimate(&records), Bytes::new(records.len() as u64 * 1362));
    }

    /// Transfer time is monotone in bytes and anti-monotone in bandwidth.
    #[test]
    fn transfer_monotonicity(bytes in 1u64..1_000_000_000, bw in 1e5f64..1e9) {
        let path = |b: f64| Path::new(vec![Link {
            name: "x".into(),
            latency_s: 0.01,
            bandwidth_bps: b,
            jitter_s: 0.0,
            loss: 0.0,
        }]);
        let t1 = transfer_time(&path(bw), &TransferSpec::rsync(Bytes::new(bytes)));
        let t2 = transfer_time(&path(bw), &TransferSpec::rsync(Bytes::new(bytes * 2)));
        let t3 = transfer_time(&path(bw * 2.0), &TransferSpec::rsync(Bytes::new(bytes)));
        prop_assert!(t2.as_secs() >= t1.as_secs());
        prop_assert!(t3.as_secs() <= t1.as_secs());
        // RPC below bulk-with-handshake for same payload.
        let r = rpc_round_trip(&path(bw), Bytes::new(bytes.min(10_000)), Bytes::new(16));
        prop_assert!(r.as_secs() > 0.0);
    }

    /// Safe speed is anti-monotone in latency and curvature, and never
    /// exceeds the cap.
    #[test]
    fn safe_speed_monotonicity(lat in 0.0f64..1.0, k in 0.01f64..3.0, margin in 0.05f64..0.5) {
        let v = max_safe_speed(lat, 0.05, k, margin, 3.5);
        let v_slower_net = max_safe_speed(lat + 0.2, 0.05, k, margin, 3.5);
        let v_tighter = max_safe_speed(lat, 0.05, k * 2.0, margin, 3.5);
        prop_assert!(v <= 3.5 + 1e-12);
        prop_assert!(v_slower_net <= v + 1e-12);
        prop_assert!(v_tighter <= v + 1e-12);
        prop_assert!(v > 0.0);
    }

    /// Competition score: monotone in speed and autonomy, anti-monotone in
    /// errors, and bounded by speed.
    #[test]
    fn competition_score_properties(v in 0.0f64..4.0, a in 0.0f64..1.0, e in 0.0f64..10.0) {
        let s = competition_score(v, a, e);
        prop_assert!(s >= 0.0);
        prop_assert!(s <= v + 1e-12);
        prop_assert!(competition_score(v + 0.5, a, e) >= s);
        prop_assert!(competition_score(v, a, e + 1.0) <= s);
        prop_assert!(competition_score(v, (a - 0.1).max(0.0), e) <= s + 1e-12);
    }
}
