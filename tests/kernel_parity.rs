//! Kernel parity: the optimized GEMM/im2col kernels against the naive
//! reference oracles in `autolearn_nn::kernels::reference`.
//!
//! The optimized path (blocked panel-packed GEMM, direct-B micro-kernel,
//! im2col/col2im lowering) must agree with the direct-loop kernels to
//! 1e-4 relative tolerance over randomized shapes — including the
//! degenerate edges (k=1 kernels, stride larger than the kernel, 1x1
//! spatial output) — and every zoo model must still train end-to-end
//! through `Trainer::fit` on top of them.

use autolearn_nn::kernels::{self, reference};
use autolearn_nn::layers::{Conv2D, Conv3D, Layer};
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelConfig, ModelKind};
use autolearn_nn::{Dataset, Tensor, TrainConfig, Trainer};
use autolearn_util::rng::rng_from_seed;
use proptest::prelude::*;
use rand::Rng;

/// Elementwise 1e-4 relative-tolerance comparison.
fn check_close(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let tol = 1e-4 * (1.0 + x.abs().max(y.abs()));
        assert!(
            (x - y).abs() <= tol,
            "{what}[{i}]: optimized {x} vs reference {y}"
        );
    }
}

fn rand_vec(n: usize, rng: &mut impl Rng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Forward + backward parity of a Conv2D layer against the reference
/// kernels at one concrete geometry.
fn conv2d_case(batch: usize, c: usize, h: usize, w: usize, f: usize, k: usize, s: usize) {
    let mut rng = rng_from_seed((batch * 1000 + c * 100 + k * 10 + s) as u64);
    let mut conv = Conv2D::new(c, f, k, s, &mut rng);
    let x = Tensor::randn(&[batch, c, h, w], 1.0, &mut rng);
    let y = conv.forward(&x, true);

    let wv = conv.w.value.data().to_vec();
    let bias = conv.b.value.data().to_vec();
    let mut want = vec![0.0f32; y.len()];
    reference::conv2d_forward(x.data(), &wv, &bias, batch, c, h, w, f, k, s, &mut want);
    check_close(y.data(), &want, "conv2d forward");

    let g = Tensor::randn(y.shape(), 1.0, &mut rng);
    conv.zero_grads();
    let dx = conv.backward(&g);
    let mut dx_want = vec![0.0f32; x.len()];
    let mut dw_want = vec![0.0f32; wv.len()];
    let mut db_want = vec![0.0f32; bias.len()];
    reference::conv2d_backward(
        x.data(),
        &wv,
        g.data(),
        batch,
        c,
        h,
        w,
        f,
        k,
        s,
        &mut dx_want,
        &mut dw_want,
        &mut db_want,
    );
    check_close(dx.data(), &dx_want, "conv2d dx");
    check_close(conv.w.grad.data(), &dw_want, "conv2d dw");
    check_close(conv.b.grad.data(), &db_want, "conv2d db");
}

/// Forward + backward parity of a Conv3D layer against the reference
/// kernels at one concrete geometry.
#[allow(clippy::too_many_arguments)]
fn conv3d_case(
    batch: usize,
    c: usize,
    t: usize,
    h: usize,
    w: usize,
    f: usize,
    kt: usize,
    k: usize,
    st: usize,
    s: usize,
) {
    let mut rng = rng_from_seed((batch * 1000 + t * 100 + kt * 10 + s) as u64);
    let mut conv = Conv3D::new(c, f, kt, k, st, s, &mut rng);
    let x = Tensor::randn(&[batch, c, t, h, w], 1.0, &mut rng);
    let y = conv.forward(&x, true);

    let wv = conv.w.value.data().to_vec();
    let bias = conv.b.value.data().to_vec();
    let mut want = vec![0.0f32; y.len()];
    reference::conv3d_forward(
        x.data(),
        &wv,
        &bias,
        batch,
        c,
        t,
        h,
        w,
        f,
        kt,
        k,
        st,
        s,
        &mut want,
    );
    check_close(y.data(), &want, "conv3d forward");

    let g = Tensor::randn(y.shape(), 1.0, &mut rng);
    conv.zero_grads();
    let dx = conv.backward(&g);
    let mut dx_want = vec![0.0f32; x.len()];
    let mut dw_want = vec![0.0f32; wv.len()];
    let mut db_want = vec![0.0f32; bias.len()];
    reference::conv3d_backward(
        x.data(),
        &wv,
        g.data(),
        batch,
        c,
        t,
        h,
        w,
        f,
        kt,
        k,
        st,
        s,
        &mut dx_want,
        &mut dw_want,
        &mut db_want,
    );
    check_close(dx.data(), &dx_want, "conv3d dx");
    check_close(conv.w.grad.data(), &dw_want, "conv3d dw");
    check_close(conv.b.grad.data(), &db_want, "conv3d db");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked GEMM against the naive row-sweep over randomized sizes,
    /// spanning both micro-panel-aligned and ragged shapes.
    #[test]
    fn matmul_parity(m in 1usize..40, k in 1usize..120, n in 1usize..40) {
        let mut rng = rng_from_seed((m * 10_000 + k * 100 + n) as u64);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut got = vec![0.0f32; m * n];
        kernels::matmul_into(&mut got, &a, &b, m, k, n);
        let mut want = vec![0.0f32; m * n];
        reference::matmul(&a, &b, m, k, n, &mut want);
        check_close(&got, &want, "matmul");
    }

    /// Transposed-operand and accumulating GEMM forms (the gradient paths)
    /// against reference matmuls on explicitly transposed copies.
    #[test]
    fn gemm_transpose_parity(m in 1usize..20, k in 1usize..48, n in 1usize..20) {
        let mut rng = rng_from_seed((m * 31 + k * 7 + n) as u64);
        // a stored [k, m] read as aᵀ; b stored [n, k] read as bᵀ.
        let a_t = rand_vec(k * m, &mut rng);
        let b_t = rand_vec(n * k, &mut rng);
        let mut a = vec![0.0f32; m * k];
        for i in 0..m {
            for kk in 0..k {
                a[i * k + kk] = a_t[kk * m + i];
            }
        }
        let mut b = vec![0.0f32; k * n];
        for kk in 0..k {
            for j in 0..n {
                b[kk * n + j] = b_t[j * k + kk];
            }
        }
        let mut want = vec![0.0f32; m * n];
        reference::matmul(&a, &b, m, k, n, &mut want);

        let mut got = rand_vec(m * n, &mut rng);
        let prior = got.clone();
        kernels::gemm(&mut got, true, &a_t, true, &b_t, true, m, k, n);
        let with_prior: Vec<f32> = want.iter().zip(&prior).map(|(wv, p)| wv + p).collect();
        check_close(&got, &with_prior, "gemm ta+tb+acc");
    }

    /// Conv2D layer (im2col + GEMM) against the direct reference loops,
    /// forward and backward, over randomized geometry.
    #[test]
    fn conv2d_parity(
        batch in 1usize..4,
        c in prop::sample::select(vec![1usize, 3]),
        f in 1usize..6,
        k in 1usize..6,
        s in 1usize..4,
        extra_h in 0usize..9,
        extra_w in 0usize..9,
    ) {
        conv2d_case(batch, c, k + extra_h, k + extra_w, f, k, s);
    }

    /// Conv3D layer against the direct reference loops over randomized
    /// geometry, including kt=1 and temporal-stride edges.
    #[test]
    fn conv3d_parity(
        batch in 1usize..3,
        kt in 1usize..3,
        k in 1usize..5,
        st in 1usize..3,
        s in 1usize..3,
        extra_t in 0usize..3,
        extra_hw in 0usize..5,
    ) {
        conv3d_case(batch, 1, kt + extra_t, k + extra_hw, k + extra_hw, 4, kt, k, st, s);
    }
}

#[test]
fn conv2d_edge_k1_is_pointwise() {
    // 1x1 kernel: convolution degenerates to a per-pixel matmul.
    conv2d_case(2, 3, 6, 7, 4, 1, 1);
}

#[test]
fn conv2d_edge_stride_larger_than_kernel() {
    // s > k skips input columns entirely between taps.
    conv2d_case(2, 1, 11, 13, 3, 2, 3);
}

#[test]
fn conv2d_edge_single_output_pixel() {
    // h == w == k: exactly one spatial output position.
    conv2d_case(3, 2, 5, 5, 4, 5, 2);
}

#[test]
fn conv3d_edge_single_output_cell() {
    conv3d_case(2, 1, 2, 4, 4, 3, 2, 4, 1, 1);
}

#[test]
fn matmul_edge_k1_outer_product() {
    let mut rng = rng_from_seed(99);
    let a = rand_vec(9, &mut rng);
    let b = rand_vec(21, &mut rng);
    let mut got = vec![0.0f32; 9 * 21];
    kernels::matmul_into(&mut got, &a, &b, 9, 1, 21);
    let mut want = vec![0.0f32; 9 * 21];
    reference::matmul(&a, &b, 9, 1, 21, &mut want);
    check_close(&got, &want, "outer product");
}

/// Every zoo architecture still trains end-to-end through `Trainer::fit`
/// on the GEMM kernels: finite losses, non-trivial scratch footprint.
#[test]
fn all_zoo_models_train_on_gemm_kernels() {
    let cfg = ModelConfig {
        height: 24,
        width: 32,
        dropout: 0.0,
        ..Default::default()
    };
    let mut rng = rng_from_seed(42);
    let mut frames = Vec::new();
    let mut steer = Vec::new();
    let mut throt = Vec::new();
    for _ in 0..24 {
        let s: f32 = rng.gen_range(-1.0..1.0);
        frames.push(Tensor::randn(&[1, cfg.height, cfg.width], 0.5, &mut rng));
        steer.push(s);
        throt.push(0.4);
    }
    let data = Dataset::new(Tensor::stack(&frames), steer, throt);

    for kind in [
        ModelKind::Linear,
        ModelKind::Categorical,
        ModelKind::Inferred,
        ModelKind::Memory,
        ModelKind::Rnn,
        ModelKind::ThreeD,
    ] {
        let mut model = CarModel::build(kind, &cfg);
        let prepared = prepare_dataset(&data, model.input_spec());
        let trainer = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 8,
            patience: None,
            ..Default::default()
        });
        let report = trainer
            .fit(&mut model, &prepared)
            .unwrap_or_else(|e| panic!("{kind:?} failed graph validation: {e:?}"));
        assert_eq!(report.epochs_ran, 2, "{kind:?} did not run both epochs");
        for e in &report.history {
            assert!(
                e.train_loss.is_finite() && e.val_loss.is_finite(),
                "{kind:?} produced non-finite loss: {e:?}"
            );
        }
        assert!(
            model.scratch_bytes() > 0,
            "{kind:?} reports no scratch arena"
        );
    }
}
