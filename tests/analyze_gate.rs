//! Repository lint gate: the workspace must be clean under
//! `autolearn-analyze` — every finding either fixed or deliberately
//! allowlisted (with a reason) in `crates/analyze/allow.toml`.
//!
//! This is the same check `scripts/analyze.sh` and
//! `cargo run -p autolearn-analyze -- --workspace` perform, wired into
//! `cargo test` so a new unwrap/expect/panic/undocumented item fails CI
//! even when nobody runs the binary.

use std::path::Path;

use autolearn_analyze::Linter;

#[test]
fn workspace_has_no_active_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let outcome = Linter::new()
        .with_allowlist_file(&root.join("crates/analyze/allow.toml"))
        .expect("allow.toml parses")
        .run_workspace(root)
        .expect("workspace scan succeeds");

    assert!(outcome.files_scanned > 50, "suspiciously few files scanned");
    assert!(
        outcome.active.is_empty(),
        "active lint findings (fix them or allowlist with a reason):\n{}",
        outcome
            .active
            .iter()
            .map(|f| format!("  [{}] {}:{} {}", f.rule, f.path, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn allowlist_entries_all_still_match_something() {
    // A stale allowlist entry (covering zero findings) means the underlying
    // code was fixed: delete the entry so it cannot mask a regression
    // elsewhere under the same path.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let linter = Linter::new()
        .with_allowlist_file(&root.join("crates/analyze/allow.toml"))
        .expect("allow.toml parses");
    let outcome = linter.run_workspace(root).expect("workspace scan succeeds");

    for entry in linter.allow_entries() {
        let used = outcome
            .allowlisted
            .iter()
            .any(|f| entry.matches(f));
        assert!(
            used,
            "stale allowlist entry (matches nothing): rule={} path={}",
            entry.rule, entry.path
        );
    }
}
