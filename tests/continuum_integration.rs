//! Cross-crate integration: the edge-to-cloud continuum — identity,
//! reservations, provisioning, BYOD, containers, artifact hub.

use autolearn_cloud::hardware::Site;
use autolearn_cloud::identity::IdentityService;
use autolearn_cloud::provision::{ProvisionState, Provisioner, ProvisioningPlan};
use autolearn_cloud::reservation::ReservationSystem;
use autolearn_edge::{ByodWorkflow, ContainerRuntime, DeviceKind, DeviceState, EdgeDevice, ImageSpec};
use autolearn_net::{transfer_time, Path, TransferSpec};
use autolearn_trovi::{Artifact, ContributionHub, EventKind, EventLog};
use autolearn_util::{Bytes, SimClock, SimTime};

#[test]
fn classroom_provisioning_day() {
    // Identity: professor creates the class project, students join.
    let mut identity = IdentityService::new();
    identity.federated_login("prof", "missouri.edu");
    identity
        .create_education_project("cs4001", "prof", 2000.0)
        .unwrap();
    identity.federated_login("alice", "missouri.edu");
    identity.add_member("cs4001", "alice").unwrap();

    // Advance reservation guarantees the class slot against walk-ins.
    let mut rs = ReservationSystem::new(Site::chameleon());
    let start = SimTime::from_secs(86_400.0);
    let end = SimTime::from_secs(86_400.0 + 7200.0);
    rs.reserve("cs4001", "gpu_v100", 4, start, end).unwrap();
    // A walk-in wanting all V100 nodes across the slot is refused.
    assert!(rs
        .reserve("walkin", "gpu_v100", 1, start, end)
        .is_err());

    // Provisioning against a discrete-event clock.
    let upload = transfer_time(&Path::car_to_cloud(), &TransferSpec::rsync(Bytes::new(20_000_000)));
    let plan = ProvisioningPlan::cuda_image(upload);
    let provisioner = Provisioner::start(plan, start);
    assert_eq!(provisioner.state_at(start), ProvisionState::Queued);

    let mut clock: SimClock<&str> = SimClock::new();
    clock.advance_to(start);
    clock.schedule_at(provisioner.ready_at(), "node-ready");
    let (t, event) = clock.step().unwrap();
    assert_eq!(event, "node-ready");
    assert_eq!(provisioner.state_at(t), ProvisionState::Ready);
    // Ready within the 2-hour class slot.
    assert!(t.as_secs() < end.as_secs());

    // Charge the project for the node-hours used.
    identity.authorize_and_charge("alice", "cs4001", 8.0).unwrap();
    assert!(identity.project("cs4001").unwrap().allocation.used > 0.0);
}

#[test]
fn byod_car_to_running_container() {
    let mut car = EdgeDevice::new("car-12", DeviceKind::RaspberryPi4, "alice");
    let zero_to_ready = ByodWorkflow::onboard(&mut car, "cs4001").unwrap();
    assert_eq!(car.state, DeviceState::InUse);
    assert!(zero_to_ready.total.as_mins() < 30.0);

    // Launch the AutoLearn container on the car and use its console.
    let mut rt = ContainerRuntime::new();
    let (mut container, launch) = rt.launch(&ImageSpec::autolearn(), &Path::car_to_cloud());
    assert!(launch.as_mins() < 15.0);
    let out = container.console_exec("python manage.py drive --js").unwrap();
    assert!(out.contains("manage.py"));

    // The paper's documented limitation: no console text editing.
    assert!(container.console_exec("nano myconfig.py").is_err());

    // Device released after the session.
    car.release();
    assert_eq!(car.state, DeviceState::Connected);
}

#[test]
fn artifact_lifecycle_with_community_contribution() {
    // The AutoLearn artifact as published.
    let mut artifact = Artifact::autolearn_example();
    assert_eq!(artifact.version_count(), 8);

    // Students interact; Trovi counts automatically.
    let mut log = EventLog::new();
    for (user, executes) in [("alice", true), ("bob", false)] {
        log.record(user, &artifact.slug, EventKind::View, SimTime::ZERO);
        log.record(user, &artifact.slug, EventKind::LaunchClick, SimTime::ZERO);
        if executes {
            log.record(user, &artifact.slug, EventKind::CellExecution, SimTime::ZERO);
        }
    }
    let m = log.metrics_for(&artifact.slug);
    assert_eq!(m.unique_launch_users, 2);
    assert_eq!(m.users_executed, 1);

    // A student forks, extends, and merges back (§4's community loop).
    let mut hub = ContributionHub::new();
    let fork = hub.fork(&artifact, "alice").unwrap();
    hub.fork_mut(fork).unwrap().notebooks[0]
        .cells
        .push(autolearn_trovi::Cell::code("# new RL extension"));
    let mr = hub.open_merge_request(fork, "RL lesson").unwrap();
    let v = hub.accept(mr, &mut artifact, SimTime::from_secs(1.0)).unwrap();
    assert_eq!(v, 9);
    assert_eq!(artifact.version_count(), 9);
}

#[test]
fn byod_car_reservable_like_any_chameleon_resource() {
    // §3.3: after BYOD registration "students can thus treat the cars as
    // any other Chameleon resource" — one calendar for cars and GPUs.
    let mut site = Site::chameleon();
    let car_type = site.register_byod_device("car-01");
    let mut rs = ReservationSystem::new(site);

    let slot_a = rs
        .reserve("team-a", &car_type, 1, SimTime::from_secs(0.0), SimTime::from_secs(3600.0))
        .unwrap();
    // The single car is busy: a second overlapping team is refused...
    assert!(rs
        .reserve("team-b", &car_type, 1, SimTime::from_secs(1800.0), SimTime::from_secs(5400.0))
        .is_err());
    // ...but the next slot works, as does a GPU node at the same time.
    assert!(rs
        .reserve("team-b", &car_type, 1, SimTime::from_secs(3600.0), SimTime::from_secs(7200.0))
        .is_ok());
    assert!(rs
        .reserve("team-a", "gpu_v100", 1, SimTime::from_secs(0.0), SimTime::from_secs(3600.0))
        .is_ok());
    assert!(rs.lease(slot_a).is_some());
}

#[test]
fn inference_rpc_fits_the_control_budget_only_nearby() {
    // A 1.2 kB frame to the datacenter and back fits a 50 ms tick easily
    // on the campus path, but not over a 100 ms-latency WAN.
    use autolearn_net::{rpc_round_trip, Link};
    let campus = Path::car_to_cloud();
    let t = rpc_round_trip(&campus, Bytes::new(1200), Bytes::new(16));
    assert!(t.as_millis() < 50.0, "campus RPC {t}");

    let wan = Path::new(vec![Link::fabric_with_latency(0.1)]);
    let t = rpc_round_trip(&wan, Bytes::new(1200), Bytes::new(16));
    assert!(t.as_millis() > 50.0, "WAN RPC {t}");
}
