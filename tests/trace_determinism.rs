//! Golden-trace determinism: the telemetry layer must be as replayable as
//! the simulation it observes.
//!
//! Properties checked:
//! * the same seed and the same fault plan export a byte-identical
//!   chrome-trace AND a byte-identical metrics summary — across many
//!   seeds, faulty and calm;
//! * the exported trace of one pipeline run nests all seven stages under
//!   a single root span, with injected faults and retried attempts as
//!   children of the stage they hit;
//! * a failing run leaves a post-mortem carrying the flight-recorder tail;
//! * histogram buckets and percentiles behave at the edges.

use autolearn::pipeline::{Pipeline, PipelineConfig};
use autolearn_obs::{attr, AttrValue, Histogram, Obs};
use autolearn_track::circle_track;
use autolearn_util::fault::{FaultConfig, FaultPlan};
use autolearn_util::RetryPolicy;

fn tiny_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::lesson_default(77);
    cfg.collection.duration_s = 20.0;
    cfg.train.epochs = 2;
    cfg.eval_laps = 1;
    cfg.eval_max_duration_s = 10.0;
    cfg
}

/// Run one observed pipeline under `plan_seed`, return both exports.
fn observed_run(plan_seed: u64) -> (String, String) {
    let mut plan = FaultPlan::from_seed(plan_seed, FaultConfig::chaos(0.35));
    let mut obs = Obs::new();
    Pipeline::new(circle_track(3.0, 0.8), tiny_config())
        .run_observed(&mut plan, &RetryPolicy::default(), &mut obs)
        .expect("default policy out-lasts the per-site fault cap");
    (obs.export_chrome_trace(), obs.export_summary())
}

#[test]
fn same_seed_same_plan_exports_are_byte_identical() {
    for plan_seed in [0u64, 3, 7, 11, 23, 42] {
        let (trace_a, summary_a) = observed_run(plan_seed);
        let (trace_b, summary_b) = observed_run(plan_seed);
        assert_eq!(
            trace_a, trace_b,
            "plan seed {plan_seed}: chrome-trace drifted between replays"
        );
        assert_eq!(
            summary_a, summary_b,
            "plan seed {plan_seed}: metrics summary drifted between replays"
        );
    }
}

#[test]
fn trace_nests_seven_stages_with_faults_and_retries_as_children() {
    // Seed 7 injects multiple faults at chaos(0.35) and still recovers.
    let mut plan = FaultPlan::from_seed(7, FaultConfig::chaos(0.35));
    let mut obs = Obs::new();
    Pipeline::new(circle_track(3.0, 0.8), tiny_config())
        .run_observed(&mut plan, &RetryPolicy::default(), &mut obs)
        .expect("seed 7 recovers");
    assert!(!plan.injected().is_empty(), "seed 7 should inject faults");

    let trace = obs.trace();
    let root = trace.spans_named("pipeline").next().expect("root span");
    let root_id = autolearn_obs::SpanId(0);
    assert!(root.end.is_some(), "root span must be closed");

    // All seven stages, nested directly under the root, in stage order.
    let stage_names = [
        "collect",
        "clean",
        "reserve",
        "provision+upload",
        "train",
        "deploy-model",
        "evaluate",
    ];
    let mut last_seq = 0u64;
    for name in stage_names {
        let span = trace
            .spans_named(name)
            .next()
            .unwrap_or_else(|| panic!("missing stage span `{name}`"));
        assert_eq!(span.parent, Some(root_id), "`{name}` must nest under root");
        assert!(span.end.is_some(), "`{name}` must be closed");
        assert!(span.seq > last_seq || name == "collect", "stages out of order at `{name}`");
        last_seq = span.seq;
    }

    // Every fault event is a child of some stage's attempt machinery, not
    // a root-level orphan: its parent span exists and is not the root.
    let fault_events: Vec<_> = trace.events_named("fault").collect();
    assert_eq!(
        fault_events.len(),
        plan.injected().len(),
        "one fault event per injected fault"
    );
    for ev in &fault_events {
        let parent = ev.parent.expect("fault events attach to a span");
        assert_ne!(parent, root_id, "fault events nest inside a stage, not the root");
        assert!(attr(&trace.spans()[parent.0].attrs, "stage").is_some() ||
                !trace.spans()[parent.0].name.is_empty());
    }

    // Retried attempts: more attempt spans than stages that retry once.
    let attempts: Vec<_> = trace.spans_named("attempt").collect();
    assert!(attempts.len() > 4, "faulty run must retry: {}", attempts.len());
    for a in &attempts {
        assert!(a.parent.is_some(), "attempt spans nest under their stage");
        let stage = attr(&a.attrs, "stage").and_then(AttrValue::as_str);
        assert!(stage.is_some(), "attempt spans carry their stage name");
    }
}

#[test]
fn failing_run_dumps_a_post_mortem_with_flight_tail() {
    // No retries: the first injected fault kills the run.
    let mut plan = FaultPlan::from_seed(7, FaultConfig::chaos(0.35));
    let mut obs = Obs::new();
    let result = Pipeline::new(circle_track(3.0, 0.8), tiny_config())
        .run_observed(&mut plan, &RetryPolicy::no_retries(), &mut obs);
    let err = match result {
        Err(e) => e,
        Ok(_) => panic!("seed 7 without retries must fail"),
    };

    let pm = obs.post_mortem().expect("failure leaves a post-mortem");
    assert!(pm.error.contains(&err.to_string()) || !pm.error.is_empty());
    assert!(!pm.recent.is_empty(), "flight recorder tail must not be empty");
    // The tail ends near the failure: its last entries mention the
    // attempt machinery that died.
    let tail = pm.recent.join("\n");
    assert!(tail.contains("attempt"), "tail shows the dying attempt: {tail}");
    // The root span is closed even on the error path.
    let root = obs.trace().spans_named("pipeline").next().expect("root span");
    assert!(root.end.is_some(), "root span closed on failure");
}

#[test]
fn calm_plan_trace_matches_run_chaos_bookkeeping() {
    // The RunLog view over the trace must agree with the report the
    // un-traced entry points produce for the same inputs.
    let report_plain = Pipeline::new(circle_track(3.0, 0.8), tiny_config())
        .run()
        .expect("fault-free run succeeds");
    let mut obs = Obs::new();
    let report_traced = Pipeline::new(circle_track(3.0, 0.8), tiny_config())
        .run_observed(&mut FaultPlan::none(), &RetryPolicy::default(), &mut obs)
        .expect("fault-free observed run succeeds");
    assert_eq!(
        serde_json::to_string(&report_plain.run_log).unwrap(),
        serde_json::to_string(&report_traced.run_log).unwrap(),
        "run log must not depend on whether the caller kept the trace"
    );
    assert_eq!(
        serde_json::to_string(&report_plain.stages).unwrap(),
        serde_json::to_string(&report_traced.stages).unwrap(),
    );
}

#[test]
fn histogram_buckets_and_percentiles_hold_at_the_edges() {
    let mut h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
    // Exactly-on-bound values land in the bucket whose bound they equal
    // (upper-inclusive), the overflow bucket catches the rest.
    for v in [0.5, 1.0, 10.0, 99.9, 100.0, 1e9] {
        h.observe(v);
    }
    assert_eq!(h.count, 6);
    assert_eq!(h.counts, vec![2, 1, 2, 1]);
    assert_eq!(h.min, 0.5);
    assert_eq!(h.max, 1e9);

    // Percentiles: p0 ≈ min bucket bound, p100 clamps to observed max.
    assert!(h.percentile(0.0) <= 1.0);
    assert_eq!(h.percentile(100.0), 1e9);
    // p50 lands in a real bucket, never above the max.
    let p50 = h.percentile(50.0);
    assert!(p50 > 0.0 && p50 <= h.max, "{p50}");

    // Empty histogram: percentile of nothing is 0, not NaN or a panic.
    let empty = Histogram::with_bounds(&[1.0]);
    assert_eq!(empty.percentile(50.0), 0.0);
    assert_eq!(empty.count, 0);

    // Deterministic seconds buckets are sorted and strictly increasing.
    let s = Histogram::seconds_buckets();
    for w in s.bounds.windows(2) {
        assert!(w[0] < w[1], "bounds must strictly increase");
    }
}
