//! Chaos property suite: the fallible pipeline under seeded fault plans.
//!
//! Properties checked across ~100 seeded plans:
//! * no plan panics — every outcome is `Ok` or a typed `PipelineError`,
//! * the same seed yields a byte-identical outcome (run log + timings),
//! * a run that recovered from injected faults costs strictly more
//!   simulated time than the fault-free baseline,
//! * with retries disabled, faulty plans die with a typed error naming the
//!   stage that failed,
//! * across the suite, every fault site (net, cloud, edge) gets exercised.

use autolearn::pipeline::{Pipeline, PipelineConfig, PipelineError, PipelineReport};
use autolearn_track::circle_track;
use autolearn_util::fault::{FaultConfig, FaultPlan, FaultSite};
use autolearn_util::RetryPolicy;

/// The smallest lesson that still trains and evaluates: keeps ~150 chaos
/// runs affordable in the test suite.
fn tiny_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::lesson_default(77);
    cfg.collection.duration_s = 20.0;
    cfg.train.epochs = 2;
    cfg.eval_laps = 1;
    cfg.eval_max_duration_s = 10.0;
    cfg
}

fn run_with(plan: &mut FaultPlan, policy: &RetryPolicy) -> Result<PipelineReport, PipelineError> {
    Pipeline::new(circle_track(3.0, 0.8), tiny_config()).run_chaos(plan, policy)
}

/// Serialize the deterministic outcome surface of a run: the complete
/// attempt/fault log plus every stage timing.
fn outcome_bytes(report: &PipelineReport) -> String {
    let stages = serde_json::to_string(&report.stages).expect("stages serialize");
    let log = serde_json::to_string(&report.run_log).expect("run log serializes");
    format!("{stages}|{log}")
}

const KNOWN_STAGES: &[&str] = &[
    "reserve",
    "provision+upload",
    "train",
    "deploy-model",
    "deploy-container",
];

#[test]
fn hundred_seeded_plans_never_panic_and_recovery_costs_time() {
    let baseline = run_with(&mut FaultPlan::none(), &RetryPolicy::default())
        .expect("fault-free baseline runs");
    let base_total = baseline.total_time();
    let base_bytes = outcome_bytes(&baseline);

    let mut recovered = 0usize;
    let mut sites_seen = [false; 3];
    for plan_seed in 0..100u64 {
        let mut plan = FaultPlan::from_seed(plan_seed, FaultConfig::chaos(0.35));
        // Default policy (4 attempts) always out-lasts the per-site fault
        // cap (2), so every plan must recover.
        let report = run_with(&mut plan, &RetryPolicy::default())
            .unwrap_or_else(|e| panic!("plan seed {plan_seed} unrecoverable: {e}"));
        for fault in &report.run_log.faults {
            sites_seen[match fault.site {
                FaultSite::Net => 0,
                FaultSite::Cloud => 1,
                FaultSite::Edge => 2,
            }] = true;
        }
        if report.run_log.faults.is_empty() {
            // No injection: the run is indistinguishable from the baseline.
            assert_eq!(
                outcome_bytes(&report),
                base_bytes,
                "calm plan seed {plan_seed} drifted from the baseline"
            );
        } else {
            recovered += 1;
            assert!(
                report.total_time().as_secs() > base_total.as_secs(),
                "plan seed {plan_seed} recovered from {:?} in {} — not more than fault-free {}",
                report.run_log.faults,
                report.total_time(),
                base_total
            );
        }
        // The checkpoint trail always ends at evaluation and never repeats.
        let stages = &report.run_log.completed_stages;
        assert_eq!(stages.last().map(String::as_str), Some("evaluate"));
        let mut dedup = stages.clone();
        dedup.dedup();
        assert_eq!(&dedup, stages, "a completed stage was re-entered");
    }
    assert!(
        recovered >= 30,
        "only {recovered}/100 plans injected anything at rate 0.35"
    );
    assert!(
        sites_seen.iter().all(|s| *s),
        "fault sites exercised: net={} cloud={} edge={}",
        sites_seen[0],
        sites_seen[1],
        sites_seen[2]
    );
}

#[test]
fn same_seed_gives_byte_identical_outcome() {
    for plan_seed in [3u64, 17, 42, 71] {
        let outcomes: Vec<String> = (0..2)
            .map(|_| {
                let mut plan = FaultPlan::from_seed(plan_seed, FaultConfig::chaos(0.6));
                let report = run_with(&mut plan, &RetryPolicy::default())
                    .expect("recoverable under default policy");
                outcome_bytes(&report)
            })
            .collect();
        assert_eq!(outcomes[0], outcomes[1], "plan seed {plan_seed} not reproducible");
    }
}

#[test]
fn without_retries_faulty_plans_fail_with_typed_stage_errors() {
    let mut failures = 0usize;
    for plan_seed in 0..20u64 {
        let mut plan = FaultPlan::from_seed(plan_seed, FaultConfig::chaos(0.8));
        match run_with(&mut plan, &RetryPolicy::no_retries()) {
            Ok(report) => {
                // Survivable without retries only if nothing failing was
                // injected (degradations and preemptions recover in-stage).
                assert_eq!(report.run_log.failed_attempts(), 0);
            }
            Err(err) => {
                failures += 1;
                let stage = err
                    .stage()
                    .unwrap_or_else(|| panic!("error without a stage: {err}"));
                assert!(
                    KNOWN_STAGES.contains(&stage),
                    "unknown failing stage '{stage}'"
                );
                assert!(
                    err.to_string().contains(stage),
                    "'{err}' does not name its stage"
                );
            }
        }
    }
    assert!(
        failures >= 5,
        "only {failures}/20 no-retry chaos plans failed at rate 0.8"
    );
}

#[test]
fn tight_deadline_surfaces_as_deadline_exceeded() {
    let policy = RetryPolicy::default().with_deadline(autolearn_util::SimDuration::from_secs(1.0));
    for plan_seed in 0..50u64 {
        let mut plan = FaultPlan::from_seed(plan_seed, FaultConfig::chaos(1.0));
        if let Err(PipelineError::DeadlineExceeded {
            stage,
            elapsed,
            deadline,
        }) = run_with(&mut plan, &policy)
        {
            assert!(KNOWN_STAGES.contains(&stage.as_str()));
            assert!(elapsed.as_secs() >= deadline.as_secs());
            return;
        }
    }
    panic!("no plan in 50 seeds blew a 1s stage deadline at rate 1.0");
}
