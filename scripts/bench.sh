#!/usr/bin/env bash
# Kernel benchmark snapshot: measures the optimized GEMM/im2col kernels
# against the naive reference oracles at DonkeyCar shapes (batch 32,
# 120x160 camera) and rewrites BENCH_kernels.json at the repo root.
#
#   scripts/bench.sh              full run, rewrites BENCH_kernels.json
#   scripts/bench.sh --smoke      fast harness check, writes nothing
#
# Commit the refreshed BENCH_kernels.json alongside any kernel change so
# the performance trajectory stays a reviewed artifact. The numbers are
# single-core medians at the x86-64-v3 feature level pinned in
# .cargo/config.toml.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p autolearn-bench --bin kernel_bench
./target/release/kernel_bench "$@"
