#!/usr/bin/env bash
# Regenerate every paper figure/claim. Outputs land in results/.
set -uo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p autolearn-bench --bins

mkdir -p results
for bin in exp_f1_pipeline exp_f2_collection_paths exp_f3_tracks \
           exp_t1_model_zoo exp_t2_gpu_sweep exp_t3_inference_placement \
           exp_t3b_remote_loop exp_t4_consistency exp_t5_digital_twin \
           exp_t6_trovi_funnel exp_t7_dataset_sweep exp_t8_zero_to_ready \
           exp_t9_cleaning exp_t10_rl exp_t11_reservations \
           exp_a1_camera_ablation exp_a2_multigpu exp_a3_augmentation; do
    echo "=== $bin ==="
    ./target/release/"$bin" | tee "results/$bin.txt"
    echo
done
