#!/usr/bin/env bash
# The full local CI gate: release build, the complete test suite, and the
# static-analysis gate — everything a change must pass before merging.
#
#   scripts/ci.sh
#
# Runs all three phases even when an earlier one fails, so one invocation
# reports every broken gate; exits non-zero if any phase failed.
set -uo pipefail
cd "$(dirname "$0")/.."

status=0

echo "== ci: cargo build --release =="
cargo build --release || status=$?

echo
echo "== ci: cargo test -q =="
cargo test -q || status=$?

echo
echo "== ci: static-analysis gate =="
scripts/analyze.sh || status=$?

echo
echo "== ci: kernel bench smoke =="
# One fast iteration at shrunken shapes: proves the benchmark harness and
# the optimized-vs-reference kernel pairing still run; writes no snapshot.
scripts/bench.sh --smoke || status=$?

echo
echo "== ci: trace smoke =="
# One traced lesson under a seeded fault plan: the exported chrome-trace
# must be byte-identical across two replays and show all seven stages.
scripts/trace.sh || status=$?

echo
echo "== ci: kernel regression gate =="
# Re-measures the optimized kernels at the committed shapes and fails if
# the aggregate is >5% slower than BENCH_kernels.json — keeps telemetry
# (and everything else) off the numeric hot paths.
cargo build --release -q -p autolearn-bench --bin kernel_bench || status=$?
./target/release/kernel_bench --check BENCH_kernels.json || status=$?

echo
echo "== ci: analyzer baseline ratchet =="
# Fails on any finding count above the committed snapshot; when counts
# shrink, the snapshot is rewritten in place — commit the updated file.
cargo run -q -p autolearn-analyze -- --workspace \
    --baseline crates/analyze/analyze-baseline.json || status=$?

echo
if [ "$status" -eq 0 ]; then
    echo "ci: all gates green"
else
    echo "ci: FAILED (status $status)"
fi
exit "$status"
