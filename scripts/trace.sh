#!/usr/bin/env bash
# Telemetry smoke: run one digital lesson under a seeded fault plan with
# tracing on, verify the exported chrome://tracing JSON is byte-identical
# across two same-seed replays and carries all seven pipeline stages, and
# write the artifact to results/trace_smoke.json.
#
#   scripts/trace.sh            pinned CI seed
#   scripts/trace.sh 42         explore another fault-plan seed
#
# Load the output at chrome://tracing or https://ui.perfetto.dev to see
# the stage spans, retry attempts and injected faults on one timeline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p autolearn-bench --bin trace_smoke
./target/release/trace_smoke "$@"
