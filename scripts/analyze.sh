#!/usr/bin/env bash
# Static-analysis gate: workspace lint scan + the analyzer's own tests.
# Exits non-zero on any active (non-allowlisted) finding or test failure.
#
#   scripts/analyze.sh            human report
#   scripts/analyze.sh --json     machine-readable report
set -uo pipefail
cd "$(dirname "$0")/.."

status=0

echo "== autolearn-analyze: workspace lint =="
cargo run -q -p autolearn-analyze -- --workspace "$@" || status=$?

echo
echo "== autolearn-analyze: unit + property tests =="
cargo test -q -p autolearn-analyze || status=$?

exit "$status"
